// Shard router tests: the client side of the sharded-service path space.
// Covers the pseudo-ref encoding, map caching and the unsharded NOT_FOUND
// fallback, hash stability across map reloads, the per-(service, shard)
// binding isolation that gives a shard kill a one-shard blast radius — a
// re-resolution storm on one shard must never touch the other shards'
// bindings — and the versioned-adoption matrix for live resharding: newer
// maps cut over (retiring dropped shards' bindings), older maps from lagging
// name-service replicas are ignored, and a NOT_FOUND seen after a sharded
// map was adopted is the publish's unbind+bind gap, not an unsharded flip.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/rpc/binding_table.h"
#include "src/rpc/shard_router.h"
#include "src/rpc/stub_helpers.h"
#include "src/sim/cluster.h"
#include "src/wire/shard_map.h"

namespace itv::rpc {
namespace {

inline constexpr std::string_view kPingInterface = "itv.test.Ping";
inline constexpr std::string_view kBase = "svc/ping";

enum PingMethod : uint32_t { kPingMethodPing = 1 };

class PingSkeleton : public Skeleton {
 public:
  std::string_view interface_name() const override { return kPingInterface; }
  void Dispatch(uint32_t method_id, const wire::Bytes& args,
                const CallContext& ctx, ReplyFn reply) override {
    if (method_id != kPingMethodPing) {
      return ReplyBadMethod(reply, method_id);
    }
    ++pings;
    return ReplyWith(reply, pings);
  }
  uint64_t pings = 0;
};

class PingProxy : public Proxy {
 public:
  using Proxy::Proxy;
  Future<uint64_t> Ping() const {
    return DecodeReply<uint64_t>(Call(kPingMethodPing, {}));
  }
};

// --- Pure encoding tests ------------------------------------------------------

TEST(ShardMapTest, EncodeDecodeRoundtrip) {
  wire::ShardMap map{5, 0xfeedfacecafebeefull};
  wire::ObjectRef ref = wire::EncodeShardMapRef(map);
  EXPECT_TRUE(wire::IsShardMapRef(ref));
  EXPECT_FALSE(ref.is_null());  // Must survive name-server bind validation.
  EXPECT_EQ(wire::DecodeShardMapRef(ref), map);

  wire::ObjectRef live;
  live.endpoint = wire::Endpoint{7, 700};
  live.incarnation = 3;
  live.object_id = 9;
  EXPECT_FALSE(wire::IsShardMapRef(live));
}

TEST(ShardMapTest, ShardOfIsStableAndInRange) {
  wire::ShardMap map{4, wire::kDefaultShardSalt};
  for (uint64_t key = 1; key < 200; ++key) {
    uint32_t s = wire::ShardOf(key, map);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, wire::ShardOf(key, map));  // Pure function of (key, map).
  }
  // Unsharded map routes everything to shard 0 / the base path.
  wire::ShardMap single;
  EXPECT_EQ(wire::ShardOf(12345, single), 0u);
  EXPECT_EQ(wire::ShardPath(kBase, 0, single), kBase);
  EXPECT_EQ(wire::ShardPath(kBase, 2, map), "svc/ping/3");
}

// --- Fixture ------------------------------------------------------------------

class ShardRouterTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kShards = 4;

  ShardRouterTest() {
    server_ = &cluster_.AddServer("forge");
    client_node_ = &cluster_.AddServer("kiln");
    client_proc_ = &client_node_->Spawn("client");
    map_.shard_count = kShards;
    for (uint32_t s = 0; s < kShards; ++s) {
      SpawnShard(s);
    }
    table_ = client_proc_->Emplace<BindingTable>(client_proc_->runtime(),
                                                 MakeResolver());
    router_ = client_proc_->Emplace<ShardRouter>(*table_);
  }

  // (Re)starts shard `s`'s primary on a fresh port; the resolver hands out
  // the fresh reference afterwards, like a promoted backup's new binding.
  void SpawnShard(uint32_t s) {
    ++spawn_count_[s];
    procs_[s] = &server_->Spawn("shard-" + std::to_string(s),
                                700 + s + 10 * spawn_count_[s]);
    skeletons_[s] = procs_[s]->Emplace<PingSkeleton>();
    refs_[s] = procs_[s]->runtime().Export(skeletons_[s]);
  }

  void KillShard(uint32_t s) {
    server_->Kill(procs_[s]->pid());
    cluster_.RunUntilIdle();
  }

  // Name-service stand-in: serves the shard map at "<base>/.shards" (unless
  // unsharded), shard primaries at "<base>/1".."<base>/N", and — in the
  // unsharded configuration — shard 0's servant at the base path itself.
  // Counts lookups per path; async delivery like a real NS round trip.
  PathResolver MakeResolver() {
    return [this](const std::string& path,
                  std::function<void(Result<wire::ObjectRef>)> cb) {
      ++resolves_[path];
      Result<wire::ObjectRef> r(NotFoundError("no binding"));
      if (path == wire::ShardMapPath(kBase)) {
        if (sharded_) {
          r = Result<wire::ObjectRef>(wire::EncodeShardMapRef(map_));
        }
      } else if (!sharded_ && path == kBase) {
        r = Result<wire::ObjectRef>(refs_[0]);
      } else {
        for (uint32_t s = 0; s < kShards; ++s) {
          if (path == wire::ShardPath(kBase, s)) {
            r = Result<wire::ObjectRef>(refs_[s]);
          }
        }
      }
      client_proc_->executor().ScheduleAfter(Duration::Millis(10),
                                             [cb, r] { cb(r); });
    };
  }

  // Smallest key that hashes to `shard` under the test map.
  uint64_t KeyFor(uint32_t shard) {
    for (uint64_t k = 1;; ++k) {
      if (wire::ShardOf(k, map_) == shard) {
        return k;
      }
    }
  }

  BindingOptions FastRetry() {
    BindingOptions opts;
    opts.initial_backoff = Duration::Millis(50);
    opts.max_attempts = 20;
    return opts;
  }

  int MapResolves() { return resolves_[wire::ShardMapPath(kBase)]; }
  int ShardResolves(uint32_t s) { return resolves_[wire::ShardPath(kBase, s)]; }

  sim::Cluster cluster_;
  sim::Node* server_ = nullptr;
  sim::Node* client_node_ = nullptr;
  sim::Process* client_proc_ = nullptr;
  sim::Process* procs_[kShards] = {};
  PingSkeleton* skeletons_[kShards] = {};
  wire::ObjectRef refs_[kShards];
  int spawn_count_[kShards] = {};
  wire::ShardMap map_;
  bool sharded_ = true;
  BindingTable* table_ = nullptr;
  ShardRouter* router_ = nullptr;
  std::map<std::string, int> resolves_;
};

// --- Map caching + routing ----------------------------------------------------

TEST_F(ShardRouterTest, RoutesByKeyAndCachesTheMap) {
  ShardedClient<PingProxy> ping(*router_, std::string(kBase), FastRetry());
  int ok = 0;
  for (uint32_t s = 0; s < kShards; ++s) {
    for (int i = 0; i < 3; ++i) {
      ping.Call<uint64_t>(KeyFor(s),
                          [](const PingProxy& p) { return p.Ping(); },
                          [&](Result<uint64_t> r) { ok += r.ok(); });
      cluster_.RunFor(Duration::Millis(200));
    }
  }
  EXPECT_EQ(ok, 12);
  // Every shard's servant saw exactly its keys' calls: routing is by hash,
  // not round-robin or sticky-to-first.
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(skeletons_[s]->pings, 3u) << "shard " << s;
    EXPECT_EQ(ShardResolves(s), 1) << "shard " << s;
  }
  // One map fetch served all twelve routes.
  EXPECT_EQ(MapResolves(), 1);
  ASSERT_TRUE(router_->CachedMap(std::string(kBase)).has_value());
  EXPECT_EQ(*router_->CachedMap(std::string(kBase)), map_);
}

TEST_F(ShardRouterTest, HashStableAcrossMapReloads) {
  ShardedClient<PingProxy> ping(*router_, std::string(kBase), FastRetry());
  uint64_t key = KeyFor(3);
  auto call = [&] {
    bool done = false;
    ping.Call<uint64_t>(key, [](const PingProxy& p) { return p.Ping(); },
                        [&](Result<uint64_t> r) { done = r.ok(); });
    cluster_.RunFor(Duration::Seconds(1));
    return done;
  };
  ASSERT_TRUE(call());
  EXPECT_EQ(skeletons_[3]->pings, 1u);

  // Expire and re-read the map (what a stale-target NACK does): the same key
  // must land on the same shard, or sessions would straddle primaries.
  router_->ExpireAllMaps();
  ASSERT_TRUE(call());
  EXPECT_EQ(MapResolves(), 2);  // The reload really happened.
  EXPECT_EQ(skeletons_[3]->pings, 2u);
  for (uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(skeletons_[s]->pings, 0u) << "shard " << s;
  }
}

TEST_F(ShardRouterTest, UnshardedServiceFallsBackToBasePath) {
  sharded_ = false;  // ".shards" now resolves NOT_FOUND, like any plain name.
  ShardedClient<PingProxy> ping(*router_, std::string(kBase), FastRetry());
  int ok = 0;
  for (int i = 0; i < 5; ++i) {
    ping.Call<uint64_t>(/*key=*/i * 977 + 1,
                        [](const PingProxy& p) { return p.Ping(); },
                        [&](Result<uint64_t> r) { ok += r.ok(); });
    cluster_.RunFor(Duration::Millis(200));
  }
  EXPECT_EQ(ok, 5);
  EXPECT_EQ(skeletons_[0]->pings, 5u);  // Every key routes to the base path.
  EXPECT_EQ(resolves_[std::string(kBase)], 1);
  // The NOT_FOUND is cached as "unsharded": one lookup, not one per call.
  EXPECT_EQ(MapResolves(), 1);
  ASSERT_TRUE(router_->CachedMap(std::string(kBase)).has_value());
  EXPECT_FALSE(router_->CachedMap(std::string(kBase))->sharded());
}

// --- Per-shard blast radius ---------------------------------------------------

TEST_F(ShardRouterTest, PrimaryMoveRebindsOnlyThatShard) {
  ShardedClient<PingProxy> ping(*router_, std::string(kBase), FastRetry());
  auto call = [&](uint32_t shard) {
    bool ok = false;
    ping.Call<uint64_t>(KeyFor(shard),
                        [](const PingProxy& p) { return p.Ping(); },
                        [&](Result<uint64_t> r) { ok = r.ok(); });
    cluster_.RunFor(Duration::Seconds(2));
    return ok;
  };
  for (uint32_t s = 0; s < kShards; ++s) {
    ASSERT_TRUE(call(s)) << "shard " << s;
  }

  // Shard 2's primary dies and a new incarnation takes over its binding.
  KillShard(2);
  SpawnShard(2);
  ASSERT_TRUE(call(2));
  EXPECT_EQ(skeletons_[2]->pings, 1u);  // The new incarnation answered.

  // Only shard 2 re-resolved; the other shards' bindings were never touched.
  EXPECT_EQ(ShardResolves(2), 2);
  for (uint32_t s : {0u, 1u, 3u}) {
    EXPECT_EQ(ShardResolves(s), 1) << "shard " << s;
    EXPECT_EQ(
        table_->Get(wire::ShardPath(kBase, s), FastRetry()).rebind_count(), 1u)
        << "shard " << s;
  }
  // Other shards still answer without any new lookups.
  ASSERT_TRUE(call(0));
  EXPECT_EQ(ShardResolves(0), 1);
}

TEST_F(ShardRouterTest, StormOnOneShardIsSingleFlightPerShard) {
  ShardedClient<PingProxy> ping(*router_, std::string(kBase), FastRetry());
  auto prime = [&](uint32_t shard) {
    bool ok = false;
    ping.Call<uint64_t>(KeyFor(shard),
                        [](const PingProxy& p) { return p.Ping(); },
                        [&](Result<uint64_t> r) { ok = r.ok(); });
    cluster_.RunFor(Duration::Seconds(2));
    return ok;
  };
  for (uint32_t s = 0; s < kShards; ++s) {
    ASSERT_TRUE(prime(s)) << "shard " << s;
  }

  // Shard 3 fails over, then takes a 12-call storm at one virtual instant.
  KillShard(3);
  SpawnShard(3);
  constexpr int kStorm = 12;
  int ok = 0;
  for (int i = 0; i < kStorm; ++i) {
    ping.Call<uint64_t>(KeyFor(3), [](const PingProxy& p) { return p.Ping(); },
                        [&](Result<uint64_t> r) { ok += r.ok(); });
  }
  cluster_.RunFor(Duration::Seconds(10));
  EXPECT_EQ(ok, kStorm);

  // The storm folded into one shared re-resolve on shard 3's binding...
  EXPECT_EQ(ShardResolves(3), 2);
  EXPECT_GE(table_->Get(wire::ShardPath(kBase, 3), FastRetry())
                .coalesced_count(),
            static_cast<uint64_t>(kStorm - 1));
  // ...and shards 0-2 saw no re-resolution at all.
  for (uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(ShardResolves(s), 1) << "shard " << s;
    EXPECT_EQ(
        table_->Get(wire::ShardPath(kBase, s), FastRetry()).rebind_count(), 1u)
        << "shard " << s;
  }
}

// --- Versioned adoption (live resharding) -------------------------------------

TEST_F(ShardRouterTest, ShrinkCutoverRetiresDroppedShardBindings) {
  ShardedClient<PingProxy> ping(*router_, std::string(kBase), FastRetry());
  auto call = [&](uint64_t key) {
    bool ok = false;
    ping.Call<uint64_t>(key, [](const PingProxy& p) { return p.Ping(); },
                        [&](Result<uint64_t> r) { ok = r.ok(); });
    cluster_.RunFor(Duration::Seconds(2));
    return ok;
  };
  // Prime every shard's binding under v1.
  for (uint32_t s = 0; s < kShards; ++s) {
    ASSERT_TRUE(call(KeyFor(s))) << "shard " << s;
  }
  EXPECT_EQ(router_->AdoptedVersion(std::string(kBase)), 1u);

  // Publish v2: 4 -> 2 shards. The next route past the cache re-reads the
  // map and must cut over: dropped shards' bindings retire at adoption.
  uint64_t old_keys[kShards];
  for (uint32_t s = 0; s < kShards; ++s) {
    old_keys[s] = KeyFor(s);
  }
  uint64_t pings_before[kShards];
  for (uint32_t s = 0; s < kShards; ++s) {
    pings_before[s] = skeletons_[s]->pings;
  }
  map_ = wire::NextShardMap(map_, 2);
  router_->ExpireAllMaps();
  for (uint32_t s = 0; s < kShards; ++s) {
    ASSERT_TRUE(call(old_keys[s])) << "old shard " << s;
  }
  EXPECT_EQ(router_->AdoptedVersion(std::string(kBase)), 2u);
  EXPECT_EQ(router_->map_cutovers(), 1u);
  EXPECT_EQ(router_->shards_retired(), 2u);
  EXPECT_EQ(table_->retired_count(), 2u);
  // The dropped shards' bindings are gone from the live table and their
  // servants saw no post-cutover traffic.
  EXPECT_EQ(table_->Find(wire::ShardPath(kBase, 2)), nullptr);
  EXPECT_EQ(table_->Find(wire::ShardPath(kBase, 3)), nullptr);
  EXPECT_EQ(skeletons_[2]->pings, pings_before[2]);
  EXPECT_EQ(skeletons_[3]->pings, pings_before[3]);
  // Surviving shards keep their bindings (no gratuitous re-resolution).
  EXPECT_EQ(ShardResolves(0), 1);
  EXPECT_EQ(ShardResolves(1), 1);
}

TEST_F(ShardRouterTest, IgnoresStaleLowerVersionMap) {
  ShardedClient<PingProxy> ping(*router_, std::string(kBase), FastRetry());
  auto call = [&](uint64_t key) {
    bool ok = false;
    ping.Call<uint64_t>(key, [](const PingProxy& p) { return p.Ping(); },
                        [&](Result<uint64_t> r) { ok = r.ok(); });
    cluster_.RunFor(Duration::Seconds(2));
    return ok;
  };
  wire::ShardMap v1 = map_;
  ASSERT_TRUE(call(KeyFor(0)));

  // Adopt v2 (same shard count: a pure version bump, no retirement).
  map_ = wire::NextShardMap(v1, kShards);
  router_->ExpireAllMaps();
  ASSERT_TRUE(call(KeyFor(1)));
  ASSERT_EQ(router_->AdoptedVersion(std::string(kBase)), 2u);
  EXPECT_EQ(router_->shards_retired(), 0u);

  // A lagging name-service replica re-serves v1: the router must keep v2 AND
  // keep the entry expired, so every route re-fetches until the replicas
  // converge on the new map.
  map_ = v1;
  router_->ExpireAllMaps();
  int fetches = MapResolves();
  ASSERT_TRUE(call(KeyFor(2)));
  EXPECT_EQ(router_->AdoptedVersion(std::string(kBase)), 2u);
  EXPECT_EQ(MapResolves(), fetches + 1);
  ASSERT_TRUE(call(KeyFor(3)));
  EXPECT_EQ(MapResolves(), fetches + 2);  // Still refetching: not adopted.

  // The replica catches up; the fetch parks the entry fresh again.
  map_ = wire::NextShardMap(v1, kShards);
  ASSERT_TRUE(call(KeyFor(0)));
  int settled = MapResolves();
  ASSERT_TRUE(call(KeyFor(1)));
  EXPECT_EQ(MapResolves(), settled);  // Cache hit: adoption un-expired it.
}

TEST_F(ShardRouterTest, NotFoundAfterShardedMapIsTransient) {
  ShardedClient<PingProxy> ping(*router_, std::string(kBase), FastRetry());
  auto call = [&](uint64_t key) {
    bool ok = false;
    ping.Call<uint64_t>(key, [](const PingProxy& p) { return p.Ping(); },
                        [&](Result<uint64_t> r) { ok = r.ok(); });
    cluster_.RunFor(Duration::Seconds(2));
    return ok;
  };
  ASSERT_TRUE(call(KeyFor(3)));
  EXPECT_EQ(skeletons_[3]->pings, 1u);

  // The versioned publish swaps ".shards" with unbind+bind; a resolve lands
  // in the gap and sees NOT_FOUND. The router must NOT flip to unsharded —
  // that would hash every key to the base path mid-cutover.
  sharded_ = false;
  router_->ExpireAllMaps();
  ASSERT_TRUE(call(KeyFor(3)));
  EXPECT_EQ(skeletons_[3]->pings, 2u);  // Still routed to shard 3.
  ASSERT_TRUE(router_->CachedMap(std::string(kBase)).has_value());
  EXPECT_TRUE(router_->CachedMap(std::string(kBase))->sharded());
  int fetches = MapResolves();
  ASSERT_TRUE(call(KeyFor(3)));
  EXPECT_EQ(MapResolves(), fetches + 1);  // Stays expired: keeps retrying.

  // The publish's bind half lands; the next fetch re-adopts and settles.
  sharded_ = true;
  ASSERT_TRUE(call(KeyFor(3)));
  int settled = MapResolves();
  ASSERT_TRUE(call(KeyFor(3)));
  EXPECT_EQ(MapResolves(), settled);
}

TEST_F(ShardRouterTest, SettopStormDuringCutoverSingleFlightsTheMapFetch) {
  ShardedClient<PingProxy> ping(*router_, std::string(kBase), FastRetry());
  // Prime under v1.
  int ok = 0;
  for (uint32_t s = 0; s < kShards; ++s) {
    ping.Call<uint64_t>(KeyFor(s), [](const PingProxy& p) { return p.Ping(); },
                        [&](Result<uint64_t> r) { ok += r.ok(); });
    cluster_.RunFor(Duration::Millis(200));
  }
  ASSERT_EQ(ok, 4);
  ASSERT_EQ(MapResolves(), 1);

  // Cutover to v2 (4 -> 2) lands while 64 settops all route at one virtual
  // instant. This process must fold the storm into ONE map fetch — fetches
  // stay O(processes), not O(settops) — and every call must complete.
  map_ = wire::NextShardMap(map_, 2);
  router_->ExpireAllMaps();
  constexpr int kSettops = 64;
  ok = 0;
  for (int i = 0; i < kSettops; ++i) {
    ping.Call<uint64_t>(/*key=*/i * 977 + 1,
                        [](const PingProxy& p) { return p.Ping(); },
                        [&](Result<uint64_t> r) { ok += r.ok(); });
  }
  cluster_.RunFor(Duration::Seconds(10));
  EXPECT_EQ(ok, kSettops);
  EXPECT_EQ(MapResolves(), 2);  // One pre-cutover fetch + one for the storm.
  EXPECT_EQ(router_->AdoptedVersion(std::string(kBase)), 2u);
  EXPECT_EQ(router_->map_cutovers(), 1u);
  // Post-cutover traffic stayed on the surviving shards.
  EXPECT_EQ(skeletons_[2]->pings + skeletons_[3]->pings, 2u);  // Priming only.
}

}  // namespace
}  // namespace itv::rpc
