#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/load/admission.h"
#include "src/load/load_board.h"
#include "src/media/mds.h"
#include "src/wire/message.h"
#include "src/wire/object_ref.h"
#include "src/wire/serialize.h"

namespace itv::wire {
namespace {

TEST(SerializeTest, PrimitiveRoundTrip) {
  Writer w;
  w.WriteU8(0xab);
  w.WriteBool(true);
  w.WriteU16(0x1234);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefull);
  w.WriteI32(-42);
  w.WriteI64(-1234567890123ll);
  w.WriteDouble(3.5);
  w.WriteString("hello");

  Reader r(w.bytes());
  EXPECT_EQ(r.ReadU8(), 0xab);
  EXPECT_TRUE(r.ReadBool());
  EXPECT_EQ(r.ReadU16(), 0x1234);
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.ReadI32(), -42);
  EXPECT_EQ(r.ReadI64(), -1234567890123ll);
  EXPECT_EQ(r.ReadDouble(), 3.5);
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerializeTest, TruncatedReadSetsStickyError) {
  Writer w;
  w.WriteU32(7);
  Reader r(w.bytes());
  EXPECT_EQ(r.ReadU64(), 0u);  // Not enough bytes.
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.ReadU32(), 0u);  // Error is sticky.
  EXPECT_FALSE(r.ok());
}

TEST(SerializeTest, OversizedStringLengthFailsCleanly) {
  Writer w;
  w.WriteU32(1000000);  // Claims a megabyte that is not there.
  Reader r(w.bytes());
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_FALSE(r.ok());
}

TEST(SerializeTest, EmptyStringAndBytes) {
  Writer w;
  w.WriteString("");
  w.WriteBytes({});
  Reader r(w.bytes());
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_TRUE(r.ReadBytes().empty());
  EXPECT_TRUE(r.ok());
}

TEST(SerializeTest, VectorRoundTrip) {
  std::vector<std::string> in{"a", "bb", ""};
  Bytes b = EncodeValue(in);
  std::vector<std::string> out;
  ASSERT_TRUE(DecodeValue(b, &out));
  EXPECT_EQ(out, in);
}

TEST(SerializeTest, NestedVectorRoundTrip) {
  std::vector<std::vector<uint32_t>> in{{1, 2}, {}, {3}};
  Bytes b = EncodeValue(in);
  std::vector<std::vector<uint32_t>> out;
  ASSERT_TRUE(DecodeValue(b, &out));
  EXPECT_EQ(out, in);
}

TEST(SerializeTest, OptionalRoundTrip) {
  std::optional<std::string> some = "x";
  std::optional<std::string> none;
  Bytes b1 = EncodeValue(some);
  Bytes b2 = EncodeValue(none);
  std::optional<std::string> o1, o2 = "junk";
  ASSERT_TRUE(DecodeValue(b1, &o1));
  ASSERT_TRUE(DecodeValue(b2, &o2));
  EXPECT_EQ(o1, some);
  EXPECT_EQ(o2, std::nullopt);
}

TEST(SerializeTest, MapRoundTrip) {
  std::map<std::string, uint64_t> in{{"a", 1}, {"b", 2}};
  Bytes b = EncodeValue(in);
  std::map<std::string, uint64_t> out;
  ASSERT_TRUE(DecodeValue(b, &out));
  EXPECT_EQ(out, in);
}

TEST(SerializeTest, DecodeValueRejectsTrailingBytes) {
  Writer w;
  w.WriteU32(1);
  w.WriteU8(0xff);
  uint32_t v = 0;
  EXPECT_FALSE(DecodeValue(w.bytes(), &v));
}

TEST(EndpointTest, ToStringDottedQuad) {
  Endpoint e{(10u << 24) | (0u << 16) | (3u << 8) | 1u, 7001};
  EXPECT_EQ(e.ToString(), "10.0.3.1:7001");
}

TEST(EndpointTest, NullAndComparison) {
  Endpoint null_ep;
  EXPECT_TRUE(null_ep.is_null());
  Endpoint e{1, 2};
  EXPECT_FALSE(e.is_null());
  EXPECT_NE(e, null_ep);
}

TEST(ObjectRefTest, RoundTrip) {
  ObjectRef ref;
  ref.endpoint = {0x0a000101, 500};
  ref.incarnation = 77;
  ref.type_id = TypeIdFromName("itv.NamingContext");
  ref.object_id = 3;
  Bytes b = EncodeValue(ref);
  ObjectRef out;
  ASSERT_TRUE(DecodeValue(b, &out));
  EXPECT_EQ(out, ref);
}

TEST(ObjectRefTest, NullDetection) {
  ObjectRef ref;
  EXPECT_TRUE(ref.is_null());
  ref.incarnation = 1;
  EXPECT_FALSE(ref.is_null());
}

TEST(TypeIdTest, DistinctForSystemInterfaces) {
  const char* names[] = {
      "itv.NamingContext", "itv.ReplicatedContext", "itv.Selector",
      "itv.ResourceAudit", "itv.ServerServiceController",
      "itv.ClusterServiceController", "itv.ConnectionManager",
      "itv.MediaDelivery", "itv.Movie", "itv.MediaManagement",
      "itv.ReliableDelivery", "itv.SettopManager", "itv.Database",
      "itv.Auth", "itv.FileSystemContext",
  };
  std::set<uint64_t> ids;
  for (const char* n : names) {
    ids.insert(TypeIdFromName(n));
  }
  EXPECT_EQ(ids.size(), std::size(names));
}

TEST(TypeIdTest, IsConstexprAndStable) {
  static_assert(TypeIdFromName("itv.Echo") != 0);
  EXPECT_EQ(TypeIdFromName("itv.Echo"), TypeIdFromName("itv.Echo"));
}

Message MakeSampleMessage() {
  Message m;
  m.kind = MsgKind::kRequest;
  m.call_id = 42;
  m.object_id = 3;
  m.type_id = TypeIdFromName("itv.Echo");
  m.method_id = 2;
  m.target_incarnation = 99;
  m.auth.principal = "settop/11.1.0.1";
  m.auth.ticket_id = 1234;
  m.auth.signature = {1, 2, 3};
  m.auth.encrypted = false;
  m.payload = {9, 8, 7};
  return m;
}

TEST(MessageTest, EncodeDecodeRoundTrip) {
  Message m = MakeSampleMessage();
  Bytes b = EncodeMessage(m);
  Message out;
  ASSERT_TRUE(DecodeMessage(b, &out));
  EXPECT_EQ(out.kind, m.kind);
  EXPECT_EQ(out.call_id, m.call_id);
  EXPECT_EQ(out.object_id, m.object_id);
  EXPECT_EQ(out.type_id, m.type_id);
  EXPECT_EQ(out.method_id, m.method_id);
  EXPECT_EQ(out.target_incarnation, m.target_incarnation);
  EXPECT_EQ(out.status, m.status);
  EXPECT_EQ(out.auth.principal, m.auth.principal);
  EXPECT_EQ(out.auth.ticket_id, m.auth.ticket_id);
  EXPECT_EQ(out.auth.signature, m.auth.signature);
  EXPECT_EQ(out.payload, m.payload);
}

TEST(MessageTest, ReplyStatusRoundTrip) {
  Message m;
  m.kind = MsgKind::kReply;
  m.call_id = 1;
  m.status = itv::StatusCode::kNotFound;
  m.status_message = "no such movie";
  Bytes b = EncodeMessage(m);
  Message out;
  ASSERT_TRUE(DecodeMessage(b, &out));
  EXPECT_EQ(out.status, itv::StatusCode::kNotFound);
  EXPECT_EQ(out.status_message, "no such movie");
}

TEST(MessageTest, BadMagicRejected) {
  Bytes b = EncodeMessage(MakeSampleMessage());
  b[0] ^= 0xff;
  Message out;
  EXPECT_FALSE(DecodeMessage(b, &out));
}

TEST(MessageTest, TruncationRejected) {
  Bytes b = EncodeMessage(MakeSampleMessage());
  for (size_t cut : {b.size() - 1, b.size() / 2, size_t{5}}) {
    Bytes t(b.begin(), b.begin() + static_cast<long>(cut));
    Message out;
    EXPECT_FALSE(DecodeMessage(t, &out)) << "cut=" << cut;
  }
}

TEST(MessageTest, SignedPortionCoversRoutingAndPayload) {
  Message a = MakeSampleMessage();
  Message b = a;
  EXPECT_EQ(a.SignedPortion(), b.SignedPortion());
  b.method_id = 5;
  EXPECT_NE(a.SignedPortion(), b.SignedPortion());
  b = a;
  b.payload = {0};
  EXPECT_NE(a.SignedPortion(), b.SignedPortion());
  b = a;
  b.auth.principal = "attacker";
  EXPECT_NE(a.SignedPortion(), b.SignedPortion());
  // The signature itself must NOT be covered (it is computed over this).
  b = a;
  b.auth.signature = {9, 9};
  EXPECT_EQ(a.SignedPortion(), b.SignedPortion());
}

// --- Load/media wire types (PR10): round-trip, field order, legacy decode ----

// Tiny deterministic PRNG (splitmix64) so the property loops are stable.
uint64_t NextRand(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

TEST(MediaWireTest, MdsLoadRoundTrip) {
  media::MdsLoad in;
  in.active_streams = 7;
  in.reserved_bps = 21'000'000;
  in.capacity_bps = 48'000'000;
  in.seq = (55ull << 20) + 3;
  Bytes b = EncodeValue(in);
  media::MdsLoad out;
  ASSERT_TRUE(DecodeValue(b, &out));
  EXPECT_EQ(out, in);
}

TEST(MediaWireTest, MdsLoadFieldOrderStability) {
  // The wire layout is a contract: u32 streams, i64 reserved, i64 capacity,
  // u64 seq. A reader pulling fields in that order must see these values.
  media::MdsLoad in;
  in.active_streams = 2;
  in.reserved_bps = 6'000'000;
  in.capacity_bps = 48'000'000;
  in.seq = 9;
  Writer w;
  WireWrite(w, in);
  Reader r(w.bytes());
  EXPECT_EQ(r.ReadU32(), 2u);
  EXPECT_EQ(r.ReadI64(), 6'000'000);
  EXPECT_EQ(r.ReadI64(), 48'000'000);
  EXPECT_EQ(r.ReadU64(), 9u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(MediaWireTest, MdsLoadLegacyDecodeWithoutSeq) {
  // A pre-seq encoder stops after capacity_bps; the trailing-field decode
  // must accept it and default seq to 0.
  Writer w;
  w.WriteU32(3);
  w.WriteI64(9'000'000);
  w.WriteI64(48'000'000);
  media::MdsLoad out;
  ASSERT_TRUE(DecodeValue(w.bytes(), &out));
  EXPECT_EQ(out.active_streams, 3u);
  EXPECT_EQ(out.reserved_bps, 9'000'000);
  EXPECT_EQ(out.capacity_bps, 48'000'000);
  EXPECT_EQ(out.seq, 0u);
}

TEST(MediaWireTest, MovieTicketRoundTripAndLegacyDecode) {
  media::MovieTicket in;
  in.stream_id = 0x55aa;
  in.movie.endpoint = {0x0a000101, 500};
  in.movie.incarnation = 3;
  in.movie.type_id = TypeIdFromName("itv.Movie");
  in.movie.object_id = 12;
  in.load_seq = 1234;
  Bytes b = EncodeValue(in);
  media::MovieTicket out;
  ASSERT_TRUE(DecodeValue(b, &out));
  EXPECT_EQ(out, in);

  // Pre-load_seq encoding: stream id + movie ref only.
  Writer w;
  w.WriteU64(in.stream_id);
  WireWrite(w, in.movie);
  media::MovieTicket legacy;
  ASSERT_TRUE(DecodeValue(w.bytes(), &legacy));
  EXPECT_EQ(legacy.stream_id, in.stream_id);
  EXPECT_EQ(legacy.movie, in.movie);
  EXPECT_EQ(legacy.load_seq, 0u);
}

TEST(LoadWireTest, LoadReportRoundTrip) {
  load::LoadReport in;
  in.reporter = "svc/mds/2";
  in.active_streams = 5;
  in.reserved_bps = 15'000'000;
  in.capacity_bps = 48'000'000;
  in.admission_rejects = 11;
  in.seq = (9ull << 20) + 44;
  Bytes b = EncodeValue(in);
  load::LoadReport out;
  ASSERT_TRUE(DecodeValue(b, &out));
  EXPECT_EQ(out, in);
  EXPECT_EQ(out.headroom_bps(), 33'000'000);
}

TEST(LoadWireTest, LoadReportFieldOrderStability) {
  load::LoadReport in;
  in.reporter = "svc/mms/1";
  in.active_streams = 4;
  in.reserved_bps = 12'000'000;
  in.capacity_bps = 36'000'000;
  in.admission_rejects = 2;
  in.seq = 77;
  Writer w;
  WireWrite(w, in);
  Reader r(w.bytes());
  EXPECT_EQ(r.ReadString(), "svc/mms/1");
  EXPECT_EQ(r.ReadU32(), 4u);
  EXPECT_EQ(r.ReadI64(), 12'000'000);
  EXPECT_EQ(r.ReadI64(), 36'000'000);
  EXPECT_EQ(r.ReadU64(), 2u);
  EXPECT_EQ(r.ReadU64(), 77u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(LoadWireTest, LoadReportVectorRoundTripProperty) {
  // Randomized encode/decode over vectors (the Snapshot reply shape).
  uint64_t state = 42;
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<load::LoadReport> in;
    size_t count = NextRand(state) % 8;
    for (size_t i = 0; i < count; ++i) {
      load::LoadReport report;
      report.reporter = "svc/x/" + std::to_string(NextRand(state) % 100);
      report.active_streams = static_cast<uint32_t>(NextRand(state) % 1000);
      report.reserved_bps = static_cast<int64_t>(NextRand(state) % (1ull << 40));
      report.capacity_bps = static_cast<int64_t>(NextRand(state) % (1ull << 40));
      report.admission_rejects = NextRand(state) % 10000;
      report.seq = NextRand(state);
      in.push_back(std::move(report));
    }
    Bytes b = EncodeValue(in);
    std::vector<load::LoadReport> out;
    ASSERT_TRUE(DecodeValue(b, &out)) << "iter=" << iter;
    EXPECT_EQ(out, in) << "iter=" << iter;
  }
}

TEST(LoadWireTest, MdsLoadRoundTripProperty) {
  uint64_t state = 7;
  for (int iter = 0; iter < 100; ++iter) {
    media::MdsLoad in;
    in.active_streams = static_cast<uint32_t>(NextRand(state));
    in.reserved_bps = static_cast<int64_t>(NextRand(state) >> 1);
    in.capacity_bps = static_cast<int64_t>(NextRand(state) >> 1);
    in.seq = NextRand(state);
    Bytes b = EncodeValue(in);
    media::MdsLoad out;
    ASSERT_TRUE(DecodeValue(b, &out)) << "iter=" << iter;
    EXPECT_EQ(out, in) << "iter=" << iter;
  }
}

TEST(LoadWireTest, AdmissionStateRoundTrip) {
  load::AdmissionState in;
  in.pool_bps = 36'000'000;
  in.reserved_bps = 33'000'000;
  in.peak_granted_bps = 36'000'000;
  in.rejects = 17;
  in.shedding = true;
  Bytes b = EncodeValue(in);
  load::AdmissionState out;
  ASSERT_TRUE(DecodeValue(b, &out));
  EXPECT_EQ(out, in);
}

TEST(LoadWireTest, TruncatedLoadReportRejected) {
  load::LoadReport in;
  in.reporter = "svc/mds/1";
  in.seq = 5;
  Bytes b = EncodeValue(in);
  for (size_t cut : {b.size() - 1, b.size() / 2, size_t{1}}) {
    Bytes t(b.begin(), b.begin() + static_cast<long>(cut));
    load::LoadReport out;
    EXPECT_FALSE(DecodeValue(t, &out)) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace itv::wire
