#include <gtest/gtest.h>

#include "src/common/executor.h"
#include "src/common/future.h"
#include "src/common/histogram.h"
#include "src/common/json.h"
#include "src/common/rand.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/strings.h"
#include "src/common/time.h"
#include "src/sim/scheduler.h"

namespace itv {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("no binding for svc/mms");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no binding for svc/mms");
  EXPECT_TRUE(IsNotFound(s));
  EXPECT_FALSE(IsUnavailable(s));
}

TEST(StatusTest, PredicatesMatchOnlyTheirCode) {
  EXPECT_TRUE(IsUnavailable(UnavailableError("x")));
  EXPECT_TRUE(IsDeadlineExceeded(DeadlineExceededError("x")));
  EXPECT_TRUE(IsAlreadyExists(AlreadyExistsError("x")));
  EXPECT_TRUE(IsResourceExhausted(ResourceExhaustedError("x")));
  EXPECT_TRUE(IsPermissionDenied(PermissionDeniedError("x")));
  EXPECT_FALSE(IsUnavailable(InternalError("x")));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 14; ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "INVALID_CODE");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InternalError("boom");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, VoidSpecialization) {
  Result<void> ok;
  EXPECT_TRUE(ok.ok());
  Result<void> err = AbortedError("a");
  EXPECT_FALSE(err.ok());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) {
    return InvalidArgumentError("not positive");
  }
  return x;
}

Result<int> DoubledPositive(int x) {
  ITV_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*DoubledPositive(21), 42);
  EXPECT_FALSE(DoubledPositive(-1).ok());
}

TEST(TimeTest, DurationArithmeticAndConversions) {
  Duration d = Duration::Seconds(1.5);
  EXPECT_EQ(d.millis(), 1500);
  EXPECT_EQ((d + Duration::Millis(500)).seconds(), 2.0);
  EXPECT_EQ((d * 2).seconds(), 3.0);
  EXPECT_LT(Duration::Millis(1), Duration::Millis(2));
  EXPECT_TRUE(Duration().is_zero());
  EXPECT_TRUE(Duration::Infinite().is_infinite());
}

TEST(TimeTest, TimeOrderingAndDifference) {
  Time a = Time::FromNanos(1000);
  Time b = a + Duration::Micros(5);
  EXPECT_LT(a, b);
  EXPECT_EQ((b - a).micros(), 5);
}

TEST(TimeTest, ToStringFormats) {
  EXPECT_EQ(Duration::Seconds(2.5).ToString(), "2.500s");
  EXPECT_EQ(Duration::Millis(250).ToString(), "250ms");
  EXPECT_EQ(Duration::Micros(10).ToString(), "10us");
}

TEST(StringsTest, SplitPathDropsEmptyComponents) {
  EXPECT_EQ(SplitPath("svc/mms"), (std::vector<std::string>{"svc", "mms"}));
  EXPECT_EQ(SplitPath("/svc//mms/"), (std::vector<std::string>{"svc", "mms"}));
  EXPECT_TRUE(SplitPath("").empty());
  EXPECT_TRUE(SplitPath("///").empty());
}

TEST(StringsTest, JoinPathRoundTrips) {
  EXPECT_EQ(JoinPath({"a", "b", "c"}), "a/b/c");
  EXPECT_EQ(JoinPath({}), "");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(FutureTest, CallbackAfterSetRunsImmediately) {
  Promise<int> p;
  p.Set(5);
  int got = 0;
  p.future().OnReady([&](const Result<int>& r) { got = *r; });
  EXPECT_EQ(got, 5);
}

TEST(FutureTest, CallbackBeforeSetRunsOnSet) {
  Promise<int> p;
  Future<int> f = p.future();
  int got = 0;
  f.OnReady([&](const Result<int>& r) { got = *r; });
  EXPECT_EQ(got, 0);
  p.Set(9);
  EXPECT_EQ(got, 9);
}

TEST(FutureTest, MultipleCallbacksRunInOrder) {
  Promise<int> p;
  Future<int> f = p.future();
  std::vector<int> order;
  f.OnReady([&](const Result<int>&) { order.push_back(1); });
  f.OnReady([&](const Result<int>&) { order.push_back(2); });
  p.Set(1);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(FutureTest, ErrorPropagates) {
  Future<int> f = Future<int>::Ready(UnavailableError("dead"));
  ASSERT_TRUE(f.is_ready());
  EXPECT_TRUE(IsUnavailable(f.result().status()));
}

TEST(FutureTest, VoidFuture) {
  Promise<void> p;
  bool done = false;
  p.future().OnReady([&](const Result<void>& r) { done = r.ok(); });
  p.Set(Result<void>());
  EXPECT_TRUE(done);
}

TEST(PeriodicTimerTest, FiresRepeatedlyOnSchedule) {
  sim::Scheduler scheduler;
  PeriodicTimer timer;
  int fires = 0;
  timer.Start(scheduler, Duration::Seconds(5), [&] { ++fires; });
  scheduler.RunFor(Duration::Seconds(26));
  EXPECT_EQ(fires, 5);  // t = 5, 10, 15, 20, 25.
}

TEST(PeriodicTimerTest, StopPreventsFurtherFires) {
  sim::Scheduler scheduler;
  PeriodicTimer timer;
  int fires = 0;
  timer.Start(scheduler, Duration::Seconds(1), [&] {
    if (++fires == 3) {
      timer.Stop();
    }
  });
  scheduler.RunFor(Duration::Seconds(10));
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTimerTest, RestartChangesPeriod) {
  sim::Scheduler scheduler;
  PeriodicTimer timer;
  int fires = 0;
  timer.Start(scheduler, Duration::Seconds(10), [&] { ++fires; });
  timer.Start(scheduler, Duration::Seconds(1), [&] { ++fires; });
  scheduler.RunFor(Duration::Seconds(5));
  EXPECT_EQ(fires, 5);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(10), 10u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ZipfFavorsLowRanks) {
  Rng rng(42);
  int low = 0;
  constexpr int kSamples = 5000;
  for (int i = 0; i < kSamples; ++i) {
    uint64_t r = rng.Zipf(100);
    EXPECT_LT(r, 100u);
    if (r < 10) {
      ++low;
    }
  }
  // Top-10% of ranks should get well over half the mass at s=1.
  EXPECT_GT(low, kSamples / 2);
}

TEST(HistogramTest, PercentilesAndMoments) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Record(i);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.Min(), 1);
  EXPECT_DOUBLE_EQ(h.Max(), 100);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_NEAR(h.Percentile(50), 50.5, 0.6);
  EXPECT_NEAR(h.Percentile(99), 99, 1.1);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_EQ(h.Mean(), 0);
}

TEST(JsonSplitTest, SplitsTopLevelMembersWithRawValues) {
  std::map<std::string, std::string> members;
  ASSERT_TRUE(json::SplitTopLevelObject(
      R"({"a": 1, "b": {"nested": [1, 2]}, "c": "x,y"})", &members));
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members["a"], "1");
  EXPECT_EQ(members["b"], R"({"nested": [1, 2]})");
  EXPECT_EQ(members["c"], R"("x,y")");
}

TEST(JsonSplitTest, EmptyObjectYieldsNoMembers) {
  std::map<std::string, std::string> members;
  ASSERT_TRUE(json::SplitTopLevelObject("  { }  ", &members));
  EXPECT_TRUE(members.empty());
}

TEST(JsonSplitTest, RejectsNonObjectAndInvalidInput) {
  std::map<std::string, std::string> members;
  std::string error;
  EXPECT_FALSE(json::SplitTopLevelObject("[1, 2]", &members, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(json::SplitTopLevelObject(R"({"a": )", &members));
  EXPECT_FALSE(json::SplitTopLevelObject("", &members));
}

TEST(JsonSplitTest, SplitValuesReassembleToValidJson) {
  std::map<std::string, std::string> members;
  ASSERT_TRUE(json::SplitTopLevelObject(
      R"({"x": [true, null, 1.5e3], "y": {"k": "v"}})", &members));
  for (const auto& [key, value] : members) {
    EXPECT_TRUE(json::ValidateSyntax(value)) << key << " => " << value;
  }
}

}  // namespace
}  // namespace itv
