// Chaos test: random service-process kills under a live VOD workload.
//
// The paper's strongest claim is operational: "Most failures of services and
// settop programs (and there were many during debugging) were covered with
// only a very brief interruption" (Section 9.5). Here a population of
// settops watches movies while a seeded gremlin repeatedly kills media and
// infrastructure processes; afterwards the cluster must converge: viewers
// still playing, and — once everyone stops — every stream and every ATM
// connection reclaimed.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/common/rand.h"
#include "src/common/trace.h"
#include "src/media/factories.h"
#include "src/naming/name_client.h"
#include "src/settop/app_manager.h"
#include "src/settop/vod_app.h"
#include "src/svc/harness.h"
#include "src/svc/settop_manager.h"

namespace itv {
namespace {

class ChaosTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  ChaosTest() : harness_(MakeOptions()) {
    media::MediaDeployment deploy;
    deploy.movies = media::SyntheticCatalog(/*count=*/8, /*server_count=*/3,
                                            /*replicas=*/2);
    deploy.rds_items = {{"vod", 1'000'000}};
    media::RegisterMediaServices(harness_, deploy);
    harness_.Boot();
    harness_.cluster().RunFor(Duration::Seconds(12));
  }

  static svc::HarnessOptions MakeOptions() {
    svc::HarnessOptions opts;
    opts.server_count = 3;
    opts.neighborhood_count = 3;
    return opts;
  }

  sim::Cluster& cluster() { return harness_.cluster(); }

  svc::ClusterHarness harness_;
};

TEST_P(ChaosTest, ClusterConvergesAfterRandomServiceKills) {
  Rng rng(GetParam());

  // Viewers: one settop per neighborhood watching a long movie; VodApps
  // auto-resume on stream failure with persistent MMS rebinding.
  struct Viewer {
    settop::VodApp* vod;
  };
  std::vector<Viewer> viewers;
  for (uint8_t nb = 1; nb <= 3; ++nb) {
    sim::Node& settop = harness_.AddSettop(nb);
    sim::Process& p = settop.Spawn("viewer");
    settop::VodApp::Options opts;
    opts.mms_rebind.max_attempts = 50;
    opts.mms_rebind.initial_backoff = Duration::Millis(500);
    opts.mms_rebind.backoff_multiplier = 1.2;
    auto* vod = p.Emplace<settop::VodApp>(
        p.runtime(), p.executor(), harness_.ClientFor(p), opts,
        &harness_.metrics());
    vod->PlayMovie("movie-" + std::to_string(rng.Below(8)), [](Status) {});
    viewers.push_back(Viewer{vod});
  }
  cluster().RunFor(Duration::Seconds(15));
  for (const Viewer& viewer : viewers) {
    ASSERT_TRUE(viewer.vod->playing());
  }

  // The gremlin: every ~20 s for 4 virtual minutes, kill one random media or
  // infrastructure process. The SSC restarts everything it manages; the CSC
  // replaces what it placed; auditing swaps bindings.
  const std::vector<std::string> victims = {
      "mdsd", "mmsd",  "rdsd-1", "rdsd-2", "rdsd-3", "cmgrd-1",
      "cmgrd-2", "cmgrd-3", "rasd", "trunkd", "settopmgr",
  };
  int kills = 0;
  for (int round = 0; round < 12; ++round) {
    size_t server = rng.Below(3);
    const std::string& name = victims[rng.Below(victims.size())];
    sim::Process* victim = harness_.server(server).FindProcessByName(name);
    if (victim != nullptr) {
      harness_.server(server).Kill(victim->pid());
      ++kills;
    }
    cluster().RunFor(Duration::Seconds(20));
  }
  ASSERT_GT(kills, 5);

  // Grace period, then: every viewer must be playing again.
  cluster().RunFor(Duration::Seconds(60));
  for (size_t i = 0; i < viewers.size(); ++i) {
    EXPECT_TRUE(viewers[i].vod->playing()) << "viewer " << i;
    EXPECT_GT(viewers[i].vod->chunks_received(), 0u) << "viewer " << i;
  }

  // Everyone stops; all resources must drain.
  for (const Viewer& viewer : viewers) {
    viewer.vod->Stop();
  }
  cluster().RunFor(Duration::Seconds(30));

  // No MDS streams left anywhere.
  uint32_t total_streams = 0;
  for (size_t i = 0; i < 3; ++i) {
    sim::Process& probe = harness_.SpawnProcessOn(i, "probe" + std::to_string(i));
    auto ref = harness_.ClientFor(probe).Resolve("svc/mds/" +
                                                 std::to_string(i + 1));
    cluster().RunFor(Duration::Seconds(3));
    if (!ref.is_ready() || !ref.result().ok()) {
      continue;  // Replica mid-restart; its streams died with it.
    }
    auto load = media::MdsProxy(probe.runtime(), ref.result().value()).GetLoad();
    cluster().RunFor(Duration::Seconds(2));
    if (load.is_ready() && load.result().ok()) {
      total_streams += load.result()->active_streams;
    }
  }
  EXPECT_EQ(total_streams, 0u);

  // The name space is intact: core services resolvable from a fresh client.
  sim::Process& probe = harness_.SpawnProcessOn(0, "final-probe");
  for (const char* path : {"svc/mms", "svc/db", "svc/settopmgr"}) {
    auto ref = harness_.ClientFor(probe).Resolve(path);
    cluster().RunFor(Duration::Seconds(3));
    EXPECT_TRUE(ref.is_ready() && ref.result().ok()) << path;
  }
}

TEST_P(ChaosTest, NameServiceMasterDiesWhileBindingsResolve) {
  // The nastiest rebind window: kill the MMS so every viewer's binding
  // invalidates and re-resolves, then kill a name-service replica (rotating
  // across servers, so the master dies in some rounds) while those resolves
  // are in flight. The binding layer must absorb the combined outage: name
  // lookups back off with jitter until re-election, then the coalesced
  // resolve completes and playback resumes.
  Rng rng(GetParam());

  std::vector<settop::VodApp*> viewers;
  for (uint8_t nb = 1; nb <= 3; ++nb) {
    sim::Node& settop = harness_.AddSettop(nb);
    sim::Process& p = settop.Spawn("viewer");
    settop::VodApp::Options opts;
    opts.mms_rebind.max_attempts = 50;
    opts.mms_rebind.initial_backoff = Duration::Millis(500);
    opts.mms_rebind.backoff_multiplier = 1.2;
    opts.mms_rebind.backoff_jitter = 0.25;
    opts.mms_rebind.jitter_seed = GetParam() + nb;
    auto* vod = p.Emplace<settop::VodApp>(
        p.runtime(), p.executor(), harness_.ClientFor(p), opts,
        &harness_.metrics());
    vod->PlayMovie("movie-" + std::to_string(rng.Below(8)), [](Status) {});
    viewers.push_back(vod);
  }
  cluster().RunFor(Duration::Seconds(15));
  for (settop::VodApp* vod : viewers) {
    ASSERT_TRUE(vod->playing());
  }

  for (int round = 0; round < 4; ++round) {
    // Kill the MMS primary: viewers' next chunk gap triggers Close/Open
    // through the invalidated binding, which resolves via the name service.
    for (size_t server = 0; server < 3; ++server) {
      sim::Process* mms = harness_.server(server).FindProcessByName("mmsd");
      if (mms != nullptr) {
        harness_.server(server).Kill(mms->pid());
        break;
      }
    }
    // A breath later — resolves now in flight — kill a name-service replica.
    cluster().RunFor(Duration::Seconds(1));
    size_t ns_server = (round + rng.Below(2)) % 3;
    sim::Process* nsd = harness_.server(ns_server).FindProcessByName("nsd");
    if (nsd != nullptr) {
      harness_.server(ns_server).Kill(nsd->pid());
    }
    // Re-election (~majority heartbeat timeouts), SSC restarts, rebinds.
    cluster().RunFor(Duration::Seconds(45));
  }

  cluster().RunFor(Duration::Seconds(60));
  for (size_t i = 0; i < viewers.size(); ++i) {
    EXPECT_TRUE(viewers[i]->playing()) << "viewer " << i;
    EXPECT_GT(viewers[i]->chunks_received(), 0u) << "viewer " << i;
  }

  // The storm stayed O(processes): coalesced rebinds were recorded, and the
  // name space answers again.
  EXPECT_GT(harness_.metrics().Get("rebind.count"), 0u);
  sim::Process& probe = harness_.SpawnProcessOn(0, "final-probe");
  auto ref = harness_.ClientFor(probe).Resolve("svc/mms");
  cluster().RunFor(Duration::Seconds(5));
  EXPECT_TRUE(ref.is_ready() && ref.result().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(1001, 2002, 3003, 4004));

// --- Scripted kill, reconstructed from the trace buffer -----------------------

TEST(FailoverTraceTest, TimelineMatchesPaperWorstCaseBound) {
  // Paper Section 9.7 defaults: backup re-binds every 10 s, the name service
  // audits every 10 s, the RAS polls peers every 5 s => 25 s worst case. A
  // scripted server crash must leave enough spans in the cluster trace buffer
  // for FailoverTimeline to reconstruct each phase, and every reconstructed
  // phase must respect its polling-interval bound.
  svc::HarnessOptions opts;
  opts.server_count = 3;
  opts.ns.audit_interval = Duration::Seconds(10);
  opts.ras.peer_poll_interval = Duration::Seconds(5);
  opts.ras.peer_failures_to_dead = 1;
  opts.ras.rpc_timeout = Duration::Seconds(1);
  opts.start_csc = false;
  svc::ClusterHarness harness(opts);
  harness.Boot();

  svc::ServiceLifecycle::Options lc_opts;
  lc_opts.binder.retry_interval = Duration::Seconds(10);
  auto spawn_replica = [&](size_t server_index) {
    sim::Process& p = harness.SpawnProcessOn(server_index, "target");
    auto* skeleton = p.Emplace<svc::SettopManagerService>(p.executor());
    wire::ObjectRef ref = p.runtime().Export(skeleton);
    auto* lifecycle = p.Emplace<svc::ServiceLifecycle>(
        p, harness.ClientFor(p), "svc/target", ref, lc_opts,
        &harness.metrics());
    svc::ServiceLifecycle::Hooks hooks;
    hooks.ready_objects = {ref};
    lifecycle->Start(std::move(hooks));
  };
  spawn_replica(1);  // Primary binds first.
  harness.cluster().RunFor(Duration::Seconds(2));
  spawn_replica(2);  // Backup keeps retrying behind it.
  harness.cluster().RunFor(Duration::Seconds(5));

  sim::Process& probe = harness.SpawnProcessOn(0, "probe");
  auto resolved = harness.ClientFor(probe).Resolve("svc/target");
  harness.cluster().RunFor(Duration::Seconds(3));
  ASSERT_TRUE(resolved.is_ready() && resolved.result().ok());
  ASSERT_EQ(resolved.result()->endpoint.host, harness.HostOf(1));

  harness.cluster().RunFor(Duration::Seconds(7));  // De-phase the pollers.
  Time crash_at = harness.cluster().Now();
  harness.server(1).Crash();
  harness.cluster().RunFor(Duration::Seconds(45));

  std::vector<trace::TraceEvent> events =
      harness.cluster().trace_buffer().Snapshot();
  trace::FailoverTimeline timeline =
      trace::FailoverTimeline::Reconstruct(events, crash_at, "svc/target");
  ASSERT_TRUE(timeline.complete()) << timeline.Report();

  // Each phase is bounded by its polling interval (detection additionally
  // pays the RPC timeout that discovers the dead peer); slack covers RPC
  // latency and scheduling quantization.
  const double slack_s = 3.0;
  EXPECT_GE(timeline.detect_delay().seconds(), 0.0);
  EXPECT_LE(timeline.detect_delay().seconds(), 5.0 + 1.0 + slack_s)
      << timeline.Report();
  EXPECT_GE(timeline.unbind_delay().seconds(), 0.0);
  EXPECT_LE(timeline.unbind_delay().seconds(), 10.0 + slack_s)
      << timeline.Report();
  EXPECT_GE(timeline.rebind_delay().seconds(), 0.0);
  EXPECT_LE(timeline.rebind_delay().seconds(), 10.0 + slack_s)
      << timeline.Report();
  EXPECT_GT(timeline.total().seconds(), 0.0);
  EXPECT_LE(timeline.total().seconds(), 25.0 + slack_s) << timeline.Report();

  // The recording spans multiple processes (RAS, name service, the binder's
  // process) and exports as a loadable Chrome trace-event document.
  std::set<std::string> recorders;
  for (const trace::TraceEvent& e : events) {
    recorders.insert(e.node + "/" + e.process);
  }
  EXPECT_GE(recorders.size(), 3u);
  std::string json = trace::ChromeTraceJson(harness.cluster().trace_buffer());
  std::string error;
  EXPECT_TRUE(trace::ValidateChromeTrace(json, &error)) << error;
}

}  // namespace
}  // namespace itv
