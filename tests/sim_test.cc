#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "src/sim/cluster.h"
#include "src/sim/scheduler.h"

namespace itv::sim {
namespace {

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.ScheduleAt(Time::FromNanos(300), [&] { order.push_back(3); });
  s.ScheduleAt(Time::FromNanos(100), [&] { order.push_back(1); });
  s.ScheduleAt(Time::FromNanos(200), [&] { order.push_back(2); });
  s.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), Time::FromNanos(300));
}

TEST(SchedulerTest, EqualTimesRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.ScheduleAt(Time::FromNanos(100), [&, i] { order.push_back(i); });
  }
  s.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  TimerId id = s.ScheduleAt(Time::FromNanos(100), [&] { ran = true; });
  EXPECT_TRUE(s.Cancel(id));
  EXPECT_FALSE(s.Cancel(id));  // Second cancel is a no-op.
  s.RunUntilIdle();
  EXPECT_FALSE(ran);
}

TEST(SchedulerTest, RunUntilAdvancesClockWithoutEvents) {
  Scheduler s;
  s.RunUntil(Time::FromNanos(5000));
  EXPECT_EQ(s.Now(), Time::FromNanos(5000));
}

TEST(SchedulerTest, RunUntilStopsAtDeadline) {
  Scheduler s;
  bool late_ran = false;
  s.ScheduleAt(Time::FromNanos(100), [] {});
  s.ScheduleAt(Time::FromNanos(10000), [&] { late_ran = true; });
  s.RunUntil(Time::FromNanos(500));
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(s.Now(), Time::FromNanos(500));
  s.RunUntil(Time::FromNanos(10000));
  EXPECT_TRUE(late_ran);
}

TEST(SchedulerTest, EventsScheduledInPastRunNow) {
  Scheduler s;
  s.RunUntil(Time::FromNanos(1000));
  bool ran = false;
  s.ScheduleAt(Time::FromNanos(1), [&] { ran = true; });
  s.RunUntilIdle();
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.Now(), Time::FromNanos(1000));  // Clock never goes backwards.
}

TEST(SchedulerTest, EventsMayScheduleMoreEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) {
      s.ScheduleAfter(Duration::Millis(1), chain);
    }
  };
  s.ScheduleAfter(Duration::Millis(1), chain);
  s.RunUntilIdle();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(s.Now(), Time() + Duration::Millis(10));
}

TEST(SchedulerTest, StepRunsExactlyOne) {
  Scheduler s;
  int count = 0;
  s.ScheduleAt(Time::FromNanos(1), [&] { ++count; });
  s.ScheduleAt(Time::FromNanos(2), [&] { ++count; });
  EXPECT_TRUE(s.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(s.Step());
}

TEST(SchedulerTest, CancelReclaimsTombstonesByCompaction) {
  Scheduler s;
  std::vector<TimerId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(s.ScheduleAt(Time::FromNanos(100 + i), [] {}));
  }
  // Cancel most of them: tombstones must outnumber live entries at some
  // point, which triggers the sweep instead of letting the heap fill up
  // with dead entries (the seed implementation's leak).
  for (int i = 0; i < 1000; i += 2) {
    EXPECT_TRUE(s.Cancel(ids[i]));
  }
  EXPECT_GE(s.compactions(), 1u);
  EXPECT_LE(s.tombstone_entries(), 500u);
  EXPECT_EQ(s.pending_events(), 500u);
  s.RunUntilIdle();
  EXPECT_EQ(s.executed_events(), 500u);
  EXPECT_EQ(s.tombstone_entries(), 0u);
}

TEST(SchedulerTest, CompactionPreservesFifoOrder) {
  Scheduler s;
  std::vector<int> order;
  std::vector<TimerId> victims;
  // Many events at the same virtual time: compaction rebuilds the heap, and
  // equal-time entries must still run in scheduling order afterwards.
  for (int i = 0; i < 200; ++i) {
    s.ScheduleAt(Time::FromNanos(100), [&order, i] { order.push_back(i); });
    victims.push_back(s.ScheduleAt(Time::FromNanos(100), [] {}));
  }
  for (TimerId id : victims) {
    EXPECT_TRUE(s.Cancel(id));
  }
  EXPECT_GE(s.compactions(), 1u);
  s.RunUntilIdle();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SchedulerTest, StaleCancelOfFiredTimerIsSafeAfterSlotReuse) {
  Scheduler s;
  int second_ran = 0;
  TimerId first = s.ScheduleAt(Time::FromNanos(100), [] {});
  s.RunUntilIdle();
  // The fired timer's slot is free; the next schedule reuses it with a new
  // generation. Cancelling the stale id must not touch the new tenant.
  TimerId second = s.ScheduleAt(Time::FromNanos(200), [&] { ++second_ran; });
  EXPECT_FALSE(s.Cancel(first));
  s.RunUntilIdle();
  EXPECT_EQ(second_ran, 1);
  EXPECT_NE(first, second);
}

TEST(SchedulerTest, CallbackMayRescheduleIntoOwnSlot) {
  Scheduler s;
  int runs = 0;
  // The slot is freed before the callback runs, so the callback's own
  // ScheduleAt may land in the very slot it is executing from.
  s.ScheduleAt(Time::FromNanos(100), [&] {
    ++runs;
    s.ScheduleAt(Time::FromNanos(200), [&] { ++runs; });
  });
  s.RunUntilIdle();
  EXPECT_EQ(runs, 2);
}

TEST(SchedulerTest, RunUntilIdleBudgetExhaustionIsNonFatal) {
  Scheduler s;
  uint64_t steps = 0;
  std::function<void()> spin = [&] {
    ++steps;
    s.ScheduleAfter(Duration::Nanos(1), spin);
  };
  s.ScheduleAfter(Duration::Nanos(1), spin);
  // The seed implementation ITV_CHECK-crashed here; now it warns and returns
  // with the runaway event still pending.
  s.RunUntilIdle(/*max_events=*/100);
  EXPECT_EQ(steps, 100u);
  EXPECT_EQ(s.pending_events(), 1u);
  s.Cancel(0);  // kInvalidTimerId: never valid, never crashes.
}

TEST(SchedulerTest, InvalidAndOutOfRangeCancelReturnsFalse) {
  Scheduler s;
  EXPECT_FALSE(s.Cancel(0));
  EXPECT_FALSE(s.Cancel(~uint64_t{0}));
  TimerId id = s.ScheduleAt(Time::FromNanos(1), [] {});
  EXPECT_FALSE(s.Cancel(id + (uint64_t{1} << 32)));  // Wrong generation.
  EXPECT_TRUE(s.Cancel(id));
}

TEST(SchedulerTest, MoveOnlyCallbacksAreSupported) {
  Scheduler s;
  auto payload = std::make_unique<int>(41);
  int seen = 0;
  s.ScheduleAt(Time::FromNanos(10),
               [p = std::move(payload), &seen] { seen = *p + 1; });
  s.RunUntilIdle();
  EXPECT_EQ(seen, 42);
}

TEST(AddressingTest, ServerAndSettopHostEncoding) {
  uint32_t server = MakeServerHost(3);
  EXPECT_TRUE(IsServerHost(server));
  EXPECT_FALSE(IsSettopHost(server));

  uint32_t settop = MakeSettopHost(5, 12);
  EXPECT_TRUE(IsSettopHost(settop));
  EXPECT_FALSE(IsServerHost(settop));
  EXPECT_EQ(NeighborhoodOfHost(settop), 5);
}

TEST(ClusterTest, AddServerAssignsDistinctHosts) {
  Cluster c;
  Node& a = c.AddServer("forge");
  Node& b = c.AddServer("kiln");
  EXPECT_NE(a.host(), b.host());
  EXPECT_EQ(c.servers().size(), 2u);
  EXPECT_EQ(c.FindNode(a.host()), &a);
}

TEST(ClusterTest, AddSettopEncodesNeighborhood) {
  Cluster c;
  Node& s1 = c.AddSettop(1);
  Node& s2 = c.AddSettop(1);
  Node& s3 = c.AddSettop(2);
  EXPECT_EQ(NeighborhoodOfHost(s1.host()), 1);
  EXPECT_EQ(NeighborhoodOfHost(s3.host()), 2);
  EXPECT_NE(s1.host(), s2.host());
}

TEST(ClusterTest, SpawnAssignsPidsAndPorts) {
  Cluster c;
  Node& n = c.AddServer("forge");
  Process& p1 = n.Spawn("ns", 500);
  Process& p2 = n.Spawn("ras");
  EXPECT_NE(p1.pid(), p2.pid());
  EXPECT_EQ(p1.port(), 500);
  EXPECT_GE(p2.port(), 30000);
  EXPECT_NE(p1.incarnation(), p2.incarnation());
  EXPECT_EQ(n.process_count(), 2u);
  EXPECT_EQ(n.FindProcessByName("ras"), &p2);
}

TEST(ClusterTest, KillTakesEffectOnNextTurn) {
  Cluster c;
  Node& n = c.AddServer("forge");
  Process& p = n.Spawn("svc");
  uint64_t pid = p.pid();
  n.Kill(pid);
  EXPECT_NE(n.FindProcess(pid), nullptr);  // Deferred.
  c.RunUntilIdle();
  EXPECT_EQ(n.FindProcess(pid), nullptr);
  EXPECT_EQ(c.FindProcessGlobal(pid), nullptr);
}

TEST(ClusterTest, ExitWatcherFiresWithReason) {
  Cluster c;
  Node& n = c.AddServer("forge");
  Process& watcher = n.Spawn("ssc");
  Process& target = n.Spawn("svc");
  uint64_t seen_pid = 0;
  ExitReason seen_reason = ExitReason::kExited;
  watcher.WatchExitOf(target, [&](uint64_t pid, ExitReason reason) {
    seen_pid = pid;
    seen_reason = reason;
  });
  uint64_t target_pid = target.pid();
  n.Kill(target_pid, ExitReason::kKilled);
  c.RunUntilIdle();
  EXPECT_EQ(seen_pid, target_pid);
  EXPECT_EQ(seen_reason, ExitReason::kKilled);
}

TEST(ClusterTest, ExitWatcherSkippedIfWatcherDead) {
  Cluster c;
  Node& n = c.AddServer("forge");
  Process& watcher = n.Spawn("ssc");
  Process& target = n.Spawn("svc");
  bool fired = false;
  watcher.WatchExitOf(target, [&](uint64_t, ExitReason) { fired = true; });
  n.Kill(watcher.pid());
  n.Kill(target.pid());
  c.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(ClusterTest, NodeCrashKillsAllProcessesWithNodeCrashReason) {
  Cluster c;
  Node& n = c.AddServer("forge");
  Node& other = c.AddServer("kiln");
  Process& watcher = other.Spawn("csc");
  Process& a = n.Spawn("a");
  n.Spawn("b");
  ExitReason reason = ExitReason::kExited;
  watcher.WatchExitOf(a, [&](uint64_t, ExitReason r) { reason = r; });
  n.Crash();
  EXPECT_FALSE(n.alive());
  c.RunUntilIdle();
  EXPECT_EQ(n.process_count(), 0u);
  EXPECT_EQ(reason, ExitReason::kNodeCrash);
}

TEST(ClusterTest, RestartBringsNodeBackEmpty)
{
  Cluster c;
  Node& n = c.AddServer("forge");
  n.Spawn("a", 500);
  n.Crash();
  c.RunUntilIdle();
  n.Restart();
  EXPECT_TRUE(n.alive());
  EXPECT_EQ(n.process_count(), 0u);
  // The well-known port is free again after restart.
  Process& again = n.Spawn("a", 500);
  EXPECT_EQ(again.port(), 500);
}

TEST(ClusterTest, ProcessEmplaceOwnsObjects) {
  struct Tracked {
    explicit Tracked(bool* flag) : flag(flag) {}
    ~Tracked() { *flag = true; }
    bool* flag;
  };
  Cluster c;
  Node& n = c.AddServer("forge");
  Process& p = n.Spawn("svc");
  bool destroyed = false;
  p.Emplace<Tracked>(&destroyed);
  n.Kill(p.pid());
  c.RunUntilIdle();
  EXPECT_TRUE(destroyed);
}

TEST(ClusterTest, ProcessTimersCancelledOnKill) {
  Cluster c;
  Node& n = c.AddServer("forge");
  Process& p = n.Spawn("svc");
  bool fired = false;
  p.executor().ScheduleAfter(Duration::Seconds(1), [&] { fired = true; });
  n.Kill(p.pid());
  c.RunFor(Duration::Seconds(5));
  EXPECT_FALSE(fired);
}

TEST(NetworkTest, PartitionBookkeeping) {
  Cluster c;
  Network& net = c.network();
  net.Partition(1, 2, true);
  EXPECT_TRUE(net.IsBlocked(1, 2));
  EXPECT_TRUE(net.IsBlocked(2, 1));
  EXPECT_FALSE(net.IsBlocked(1, 3));
  net.Partition(1, 2, false);
  EXPECT_FALSE(net.IsBlocked(1, 2));
  net.Isolate(7, true);
  EXPECT_TRUE(net.IsBlocked(7, 9));
  EXPECT_TRUE(net.IsBlocked(9, 7));
  net.Isolate(7, false);
  EXPECT_FALSE(net.IsBlocked(7, 9));
}

TEST(NetworkTest, PartitionIsSymmetricByConstruction) {
  Cluster c;
  Network& net = c.network();
  net.Partition(3, 9, true);
  // Healing through the swapped pair addresses the same canonical link: a
  // fuzz schedule can never half-heal a partition it installed.
  net.Partition(9, 3, false);
  EXPECT_FALSE(net.IsBlocked(3, 9));
  EXPECT_FALSE(net.IsBlocked(9, 3));
  net.Partition(9, 3, true);
  net.Isolate(5, true);
  EXPECT_EQ(net.partition_count(), 1u);
  EXPECT_EQ(net.isolated_count(), 1u);
  net.HealAllPartitions();
  EXPECT_EQ(net.partition_count(), 0u);
  EXPECT_EQ(net.isolated_count(), 0u);
  EXPECT_FALSE(net.IsBlocked(3, 9));
  EXPECT_FALSE(net.IsBlocked(5, 1));
}

// --- Message-fault injection (chaos substrate) --------------------------------

struct FaultRig {
  Cluster cluster;
  Process* tx = nullptr;
  Process* rx = nullptr;
  std::vector<uint64_t> received;

  FaultRig() {
    Node& a = cluster.AddServer("a");
    Node& b = cluster.AddServer("b");
    tx = &a.Spawn("tx");
    rx = &b.Spawn("rx");
    rx->transport().SetReceiver(
        [this](wire::Message m) { received.push_back(m.call_id); });
  }

  void SendBurst(uint64_t count) {
    for (uint64_t i = 1; i <= count; ++i) {
      wire::Message m;
      m.call_id = i;
      tx->transport().Send(rx->endpoint(), std::move(m));
    }
  }
};

TEST(NetworkFaultTest, DelayBurstStretchesLinkButPreservesFifo) {
  FaultRig rig;
  rig.cluster.network().SeedFaultRng(7);
  NetworkFaultOptions faults;
  faults.delay_rate = 1.0;
  faults.delay_min = Duration::Millis(5);
  faults.delay_max = Duration::Millis(50);
  rig.cluster.network().SetFaultInjection(faults);

  rig.SendBurst(50);
  rig.cluster.RunFor(Duration::Seconds(5));
  ASSERT_EQ(rig.received.size(), 50u);
  // Delays are clamped behind the link's latest scheduled arrival: the burst
  // stretches the link but never reorders it.
  EXPECT_TRUE(std::is_sorted(rig.received.begin(), rig.received.end()));
  EXPECT_EQ(rig.cluster.metrics().Get("net.msg.delayed"), 50u);
  EXPECT_EQ(rig.cluster.metrics().Get("net.msg.reordered"), 0u);
}

TEST(NetworkFaultTest, ReorderBurstBreaksFifo) {
  FaultRig rig;
  rig.cluster.network().SeedFaultRng(7);
  NetworkFaultOptions faults;
  faults.reorder_rate = 0.5;
  rig.cluster.network().SetFaultInjection(faults);

  rig.SendBurst(100);
  rig.cluster.RunFor(Duration::Seconds(5));
  ASSERT_EQ(rig.received.size(), 100u);
  // Held messages skip the FIFO clamp, so later sends overtake them.
  EXPECT_FALSE(std::is_sorted(rig.received.begin(), rig.received.end()));
  EXPECT_GE(rig.cluster.metrics().Get("net.msg.reordered"), 1u);
}

TEST(NetworkFaultTest, DropBurstDropsThenClearRecovers) {
  FaultRig rig;
  rig.cluster.network().SeedFaultRng(7);
  NetworkFaultOptions faults;
  faults.drop_rate = 1.0;
  rig.cluster.network().SetFaultInjection(faults);

  rig.SendBurst(20);
  rig.cluster.RunFor(Duration::Seconds(1));
  EXPECT_TRUE(rig.received.empty());
  EXPECT_EQ(rig.cluster.metrics().Get("net.msg.fault_dropped"), 20u);

  rig.cluster.network().ClearFaultInjection();
  rig.SendBurst(20);
  rig.cluster.RunFor(Duration::Seconds(1));
  EXPECT_EQ(rig.received.size(), 20u);
  EXPECT_EQ(rig.cluster.metrics().Get("net.msg.fault_dropped"), 20u);
}

TEST(NetworkFaultTest, SeededInjectionReplaysIdentically) {
  auto run = [] {
    FaultRig rig;
    rig.cluster.network().SeedFaultRng(99);
    NetworkFaultOptions faults;
    faults.drop_rate = 0.3;
    faults.delay_rate = 0.3;
    faults.reorder_rate = 0.2;
    rig.cluster.network().SetFaultInjection(faults);
    rig.SendBurst(100);
    rig.cluster.RunFor(Duration::Seconds(5));
    return rig.received;
  };
  // Same seed, same sends: byte-identical delivery order — the property the
  // whole seed-replay reproduction story rests on.
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace itv::sim
