// Name service tests: context tree semantics, replicated contexts and
// selectors, master election and update replication, auditing, and the
// primary/backup binding pattern (paper Sections 4 and 5).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/naming/context_tree.h"
#include "src/naming/name_client.h"
#include "src/naming/name_server.h"
#include "src/naming/selector.h"
#include "src/sim/cluster.h"

namespace itv::naming {
namespace {

wire::ObjectRef FakeRef(uint32_t host, uint16_t port, uint64_t object_id = 1,
                        std::string_view type = "itv.test.Svc") {
  wire::ObjectRef ref;
  ref.endpoint = {host, port};
  ref.incarnation = 99;
  ref.type_id = wire::TypeIdFromName(type);
  ref.object_id = object_id;
  return ref;
}

NameUpdate Bind(const std::string& path, const wire::ObjectRef& ref) {
  return NameUpdate{NameOp::kBind, SplitPath(path), ref};
}
NameUpdate Unbind(const std::string& path) {
  return NameUpdate{NameOp::kUnbind, SplitPath(path), {}};
}
NameUpdate NewContext(const std::string& path) {
  return NameUpdate{NameOp::kBindNewContext, SplitPath(path), {}};
}
NameUpdate NewReplContext(const std::string& path) {
  return NameUpdate{NameOp::kBindReplContext, SplitPath(path), {}};
}

// --- ContextTree --------------------------------------------------------------

TEST(ContextTreeTest, BindAndListInNestedContexts) {
  ContextTree tree;
  ASSERT_TRUE(tree.Apply(NewContext("svc")).ok());
  ASSERT_TRUE(tree.Apply(Bind("svc/mms", FakeRef(1, 2))).ok());
  auto list = tree.List(SplitPath("svc"));
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 1u);
  EXPECT_EQ((*list)[0].name, "mms");
  EXPECT_EQ((*list)[0].kind, BindingKind::kObject);
}

TEST(ContextTreeTest, BindIntoMissingContextFails) {
  ContextTree tree;
  EXPECT_TRUE(IsNotFound(tree.Apply(Bind("svc/mms", FakeRef(1, 2)))));
}

TEST(ContextTreeTest, DoubleBindIsAlreadyExists) {
  ContextTree tree;
  ASSERT_TRUE(tree.Apply(NewContext("svc")).ok());
  ASSERT_TRUE(tree.Apply(Bind("svc/mms", FakeRef(1, 2))).ok());
  EXPECT_TRUE(IsAlreadyExists(tree.Apply(Bind("svc/mms", FakeRef(3, 4)))));
}

TEST(ContextTreeTest, SelectorSlotIsRebindable) {
  ContextTree tree;
  ASSERT_TRUE(tree.Apply(NewReplContext("svc")).ok());
  ASSERT_TRUE(
      tree.Apply(Bind("svc/selector",
                      MakeBuiltinSelectorRef(BuiltinSelector::kFirst)))
          .ok());
  EXPECT_TRUE(
      tree.Apply(Bind("svc/selector",
                      MakeBuiltinSelectorRef(BuiltinSelector::kRoundRobin)))
          .ok());
}

TEST(ContextTreeTest, UnbindNonEmptyContextFails) {
  ContextTree tree;
  ASSERT_TRUE(tree.Apply(NewContext("svc")).ok());
  ASSERT_TRUE(tree.Apply(Bind("svc/x", FakeRef(1, 2))).ok());
  EXPECT_EQ(tree.Apply(Unbind("svc")).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(tree.Apply(Unbind("svc/x")).ok());
  EXPECT_TRUE(tree.Apply(Unbind("svc")).ok());
}

TEST(ContextTreeTest, SnapshotRoundTripPreservesStructure) {
  ContextTree tree;
  ASSERT_TRUE(tree.Apply(NewContext("svc")).ok());
  ASSERT_TRUE(tree.Apply(NewReplContext("svc/rds")).ok());
  ASSERT_TRUE(tree.Apply(Bind("svc/rds/1", FakeRef(1, 2))).ok());
  ASSERT_TRUE(tree.Apply(Bind("svc/rds/2", FakeRef(3, 4))).ok());
  ASSERT_TRUE(tree
                  .Apply(Bind("svc/rds/selector",
                              MakeBuiltinSelectorRef(BuiltinSelector::kFirst)))
                  .ok());

  auto decoded = ContextTree::DecodeSnapshot(tree.EncodeSnapshot());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(tree.StructurallyEquals(*decoded));
  EXPECT_EQ(decoded->node_count(), tree.node_count());
}

TEST(ContextTreeTest, CorruptSnapshotRejected) {
  ContextTree tree;
  ASSERT_TRUE(tree.Apply(NewContext("svc")).ok());
  wire::Bytes snap = tree.EncodeSnapshot();
  snap.push_back(0xff);
  EXPECT_FALSE(ContextTree::DecodeSnapshot(snap).ok());
}

TEST(ContextTreeTest, SameUpdateSequenceYieldsIdenticalTrees) {
  std::vector<NameUpdate> updates = {
      NewContext("svc"),        NewReplContext("svc/mds"),
      Bind("svc/mds/1", FakeRef(1, 2)), Bind("svc/mds/2", FakeRef(3, 4)),
      Bind("svc/db", FakeRef(5, 6)),    Unbind("svc/mds/1"),
  };
  ContextTree a, b;
  for (const NameUpdate& u : updates) {
    Status sa = a.Apply(u);
    Status sb = b.Apply(u);
    EXPECT_EQ(sa.code(), sb.code());
  }
  EXPECT_TRUE(a.StructurallyEquals(b));
}

TEST(ContextTreeTest, AllBoundObjectsSkipsSelectorsAndContexts) {
  ContextTree tree;
  ASSERT_TRUE(tree.Apply(NewContext("svc")).ok());
  ASSERT_TRUE(tree.Apply(NewReplContext("svc/rds")).ok());
  ASSERT_TRUE(tree.Apply(Bind("svc/rds/1", FakeRef(1, 2))).ok());
  ASSERT_TRUE(tree
                  .Apply(Bind("svc/rds/selector",
                              MakeBuiltinSelectorRef(BuiltinSelector::kFirst)))
                  .ok());
  ASSERT_TRUE(tree.Apply(Bind("svc/db", FakeRef(3, 4))).ok());
  auto objects = tree.AllBoundObjects();
  ASSERT_EQ(objects.size(), 2u);
  EXPECT_EQ(JoinPath(objects[0].path), "svc/db");
  EXPECT_EQ(JoinPath(objects[1].path), "svc/rds/1");
}

// --- Builtin selectors ----------------------------------------------------------

TEST(SelectorTest, FirstAndRoundRobin) {
  std::vector<std::string> names{"1", "2", "3"};
  std::vector<wire::ObjectRef> refs(3);
  uint64_t rr = 0;
  EXPECT_EQ(EvalBuiltinSelector(BuiltinSelector::kFirst, 0, names, refs, &rr),
            0u);
  EXPECT_EQ(
      EvalBuiltinSelector(BuiltinSelector::kRoundRobin, 0, names, refs, &rr),
      0u);
  EXPECT_EQ(
      EvalBuiltinSelector(BuiltinSelector::kRoundRobin, 0, names, refs, &rr),
      1u);
  EXPECT_EQ(
      EvalBuiltinSelector(BuiltinSelector::kRoundRobin, 0, names, refs, &rr),
      2u);
  EXPECT_EQ(
      EvalBuiltinSelector(BuiltinSelector::kRoundRobin, 0, names, refs, &rr),
      0u);
}

TEST(SelectorTest, ByCallerHostMatchesAndFallsBack) {
  std::vector<std::string> names{"a", "b"};
  std::vector<wire::ObjectRef> refs{FakeRef(100, 1), FakeRef(200, 1)};
  uint64_t rr = 0;
  EXPECT_EQ(EvalBuiltinSelector(BuiltinSelector::kByCallerHost, 200, names,
                                refs, &rr),
            1u);
  EXPECT_EQ(EvalBuiltinSelector(BuiltinSelector::kByCallerHost, 999, names,
                                refs, &rr),
            0u);
}

TEST(SelectorTest, NeighborhoodSelectsByCallerIp) {
  std::vector<std::string> names{"1", "2"};
  std::vector<wire::ObjectRef> refs(2);
  uint64_t rr = 0;
  uint32_t settop_nb2 = MakeSettopHost(2, 7);
  EXPECT_EQ(EvalBuiltinSelector(BuiltinSelector::kNeighborhood, settop_nb2,
                                names, refs, &rr),
            1u);
  uint32_t settop_nb9 = MakeSettopHost(9, 7);
  EXPECT_EQ(EvalBuiltinSelector(BuiltinSelector::kNeighborhood, settop_nb9,
                                names, refs, &rr),
            std::nullopt);
  // Server callers cannot be neighborhood-selected.
  EXPECT_EQ(EvalBuiltinSelector(BuiltinSelector::kNeighborhood,
                                MakeServerHost(1), names, refs, &rr),
            std::nullopt);
}

TEST(SelectorTest, EmptyReplicaListSelectsNothing) {
  std::vector<std::string> names;
  std::vector<wire::ObjectRef> refs;
  uint64_t rr = 0;
  EXPECT_EQ(EvalBuiltinSelector(BuiltinSelector::kFirst, 0, names, refs, &rr),
            std::nullopt);
}

// --- Name service over the simulated cluster ------------------------------------

// Spawns one name service replica per server node.
class NameServiceFixture : public ::testing::Test {
 protected:
  void BootNameService(size_t replica_count) {
    std::vector<wire::Endpoint> peers;
    for (size_t i = 0; i < replica_count; ++i) {
      sim::Node& node = cluster_.AddServer("server" + std::to_string(i + 1));
      servers_.push_back(&node);
      peers.push_back({node.host(), kNameServicePort});
    }
    for (size_t i = 0; i < replica_count; ++i) {
      SpawnReplica(i);
    }
    // Let the election settle.
    cluster_.RunFor(Duration::Seconds(5));
  }

  NameServer* SpawnReplica(size_t index) {
    std::vector<wire::Endpoint> peers;
    for (sim::Node* node : servers_) {
      peers.push_back({node->host(), kNameServicePort});
    }
    sim::Process& p = servers_[index]->Spawn("nsd", kNameServicePort);
    NameServerOptions opts;
    opts.replica_id = static_cast<uint32_t>(index + 1);
    opts.peers = peers;
    auto* ns = p.Emplace<NameServer>(p.runtime(), p.executor(), opts,
                                     &cluster_.metrics());
    ns->Start();
    replicas_[index] = ns;
    return ns;
  }

  NameServer* Master() {
    for (auto& [index, ns] : replicas_) {
      if (ns != nullptr && servers_[index]->FindProcessByName("nsd") != nullptr &&
          ns->is_master()) {
        return ns;
      }
    }
    return nullptr;
  }

  sim::Process& SpawnClient(const std::string& name = "client") {
    if (client_node_ == nullptr) {
      client_node_ = &cluster_.AddServer("client-node");
    }
    return client_node_->Spawn(name);
  }

  template <typename T>
  Result<T> Wait(Future<T> f, Duration limit = Duration::Seconds(5)) {
    cluster_.RunFor(limit);
    if (!f.is_ready()) {
      return DeadlineExceededError("future not ready in test");
    }
    return f.result();
  }

  sim::Cluster cluster_;
  std::vector<sim::Node*> servers_;
  std::map<size_t, NameServer*> replicas_;
  sim::Node* client_node_ = nullptr;
};

class SingleReplicaTest : public NameServiceFixture {
 protected:
  SingleReplicaTest() { BootNameService(1); }
};

TEST_F(SingleReplicaTest, SingleReplicaElectsItself) {
  EXPECT_TRUE(replicas_[0]->is_master());
}

TEST_F(SingleReplicaTest, BindResolveRoundTrip) {
  sim::Process& client = SpawnClient();
  NameClient nc(client.runtime(), servers_[0]->host());
  ASSERT_TRUE(Wait(nc.BindNewContext("svc")).ok());
  wire::ObjectRef ref = FakeRef(42, 4242);
  ASSERT_TRUE(Wait(nc.Bind("svc/mms", ref)).ok());
  auto resolved = Wait(nc.Resolve("svc/mms"));
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_EQ(*resolved, ref);
}

TEST_F(SingleReplicaTest, ResolveMissingIsNotFound) {
  sim::Process& client = SpawnClient();
  NameClient nc(client.runtime(), servers_[0]->host());
  EXPECT_TRUE(IsNotFound(Wait(nc.Resolve("svc/nothing")).status()));
}

TEST_F(SingleReplicaTest, DoubleBindRejected) {
  sim::Process& client = SpawnClient();
  NameClient nc(client.runtime(), servers_[0]->host());
  ASSERT_TRUE(Wait(nc.BindNewContext("svc")).ok());
  ASSERT_TRUE(Wait(nc.Bind("svc/x", FakeRef(1, 1))).ok());
  EXPECT_TRUE(IsAlreadyExists(Wait(nc.Bind("svc/x", FakeRef(2, 2))).status()));
}

TEST_F(SingleReplicaTest, ResolveContextNameReturnsContextObject) {
  sim::Process& client = SpawnClient();
  NameClient nc(client.runtime(), servers_[0]->host());
  ASSERT_TRUE(Wait(nc.BindNewContext("apps")).ok());
  auto ctx = Wait(nc.Resolve("apps"));
  ASSERT_TRUE(ctx.ok());
  EXPECT_EQ(ctx->type_id, wire::TypeIdFromName(kNamingContextInterface));

  // Operations relative to the resolved context object work.
  NamingContextProxy proxy(client.runtime(), *ctx);
  ASSERT_TRUE(Wait(proxy.Bind({"vod"}, FakeRef(9, 9))).ok());
  auto through_root = Wait(nc.Resolve("apps/vod"));
  ASSERT_TRUE(through_root.ok());
  EXPECT_EQ(*through_root, FakeRef(9, 9));
}

TEST_F(SingleReplicaTest, ReplicatedContextSelectsFirstByDefault) {
  sim::Process& client = SpawnClient();
  NameClient nc(client.runtime(), servers_[0]->host());
  ASSERT_TRUE(Wait(nc.BindNewContext("svc")).ok());
  ASSERT_TRUE(Wait(nc.BindReplContext("svc/rds")).ok());
  ASSERT_TRUE(Wait(nc.Bind("svc/rds/1", FakeRef(1, 1))).ok());
  ASSERT_TRUE(Wait(nc.Bind("svc/rds/2", FakeRef(2, 2))).ok());
  auto r = Wait(nc.Resolve("svc/rds"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, FakeRef(1, 1));
}

TEST_F(SingleReplicaTest, RoundRobinSelectorRotates) {
  sim::Process& client = SpawnClient();
  NameClient nc(client.runtime(), servers_[0]->host());
  ASSERT_TRUE(Wait(nc.BindNewContext("svc")).ok());
  ASSERT_TRUE(Wait(nc.BindReplContext("svc/rds")).ok());
  ASSERT_TRUE(Wait(nc.Bind("svc/rds/1", FakeRef(1, 1))).ok());
  ASSERT_TRUE(Wait(nc.Bind("svc/rds/2", FakeRef(2, 2))).ok());
  ASSERT_TRUE(Wait(nc.SetSelector("svc/rds", BuiltinSelector::kRoundRobin)).ok());

  auto r1 = Wait(nc.Resolve("svc/rds"));
  auto r2 = Wait(nc.Resolve("svc/rds"));
  auto r3 = Wait(nc.Resolve("svc/rds"));
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_EQ(*r1, FakeRef(1, 1));
  EXPECT_EQ(*r2, FakeRef(2, 2));
  EXPECT_EQ(*r3, FakeRef(1, 1));
}

TEST_F(SingleReplicaTest, DirectReplicaNamingBypassesSelector) {
  sim::Process& client = SpawnClient();
  NameClient nc(client.runtime(), servers_[0]->host());
  ASSERT_TRUE(Wait(nc.BindNewContext("svc")).ok());
  ASSERT_TRUE(Wait(nc.BindReplContext("svc/cmgr")).ok());
  ASSERT_TRUE(Wait(nc.Bind("svc/cmgr/1", FakeRef(1, 1))).ok());
  ASSERT_TRUE(Wait(nc.Bind("svc/cmgr/2", FakeRef(2, 2))).ok());
  // Paper Figure 4: resolve("svc/cmgr/1") names the replica directly.
  auto r = Wait(nc.Resolve("svc/cmgr/2"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, FakeRef(2, 2));
}

TEST_F(SingleReplicaTest, NeighborhoodSelectorRoutesSettops) {
  sim::Process& client = SpawnClient();
  NameClient nc(client.runtime(), servers_[0]->host());
  ASSERT_TRUE(Wait(nc.BindNewContext("svc")).ok());
  ASSERT_TRUE(Wait(nc.BindReplContext("svc/cmgr")).ok());
  ASSERT_TRUE(Wait(nc.Bind("svc/cmgr/1", FakeRef(1, 1))).ok());
  ASSERT_TRUE(Wait(nc.Bind("svc/cmgr/2", FakeRef(2, 2))).ok());
  ASSERT_TRUE(
      Wait(nc.SetSelector("svc/cmgr", BuiltinSelector::kNeighborhood)).ok());

  // A settop in neighborhood 2 resolves to replica "2".
  sim::Node& settop = cluster_.AddSettop(2);
  sim::Process& sp = settop.Spawn("app");
  NameClient settop_nc(sp.runtime(), servers_[0]->host());
  auto r = Wait(settop_nc.Resolve("svc/cmgr"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, FakeRef(2, 2));

  // A settop in an unassigned neighborhood gets NOT_FOUND.
  sim::Node& stray = cluster_.AddSettop(7);
  sim::Process& strayp = stray.Spawn("app");
  NameClient stray_nc(strayp.runtime(), servers_[0]->host());
  EXPECT_TRUE(IsNotFound(Wait(stray_nc.Resolve("svc/cmgr")).status()));
}

TEST_F(SingleReplicaTest, ReplicatedContextOfContexts) {
  // Paper Figure 7: resolving "bin/vod" picks a context via the selector and
  // completes the lookup inside it.
  sim::Process& client = SpawnClient();
  NameClient nc(client.runtime(), servers_[0]->host());
  ASSERT_TRUE(Wait(nc.BindReplContext("bin")).ok());
  ASSERT_TRUE(Wait(nc.BindNewContext("bin/1")).ok());
  ASSERT_TRUE(Wait(nc.BindNewContext("bin/2")).ok());
  ASSERT_TRUE(Wait(nc.Bind("bin/1/vod", FakeRef(1, 1))).ok());
  ASSERT_TRUE(Wait(nc.Bind("bin/2/vod", FakeRef(2, 2))).ok());
  auto r = Wait(nc.Resolve("bin/vod"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, FakeRef(1, 1));  // Default selector: first (context "1").
}

TEST_F(SingleReplicaTest, CustomRemoteSelectorIsInvoked) {
  // A least-loaded selector object living in a separate process.
  sim::Process& selp = servers_[0]->Spawn("selector-svc");
  auto* impl = selp.Emplace<LeastLoadedSelector>();
  auto* skel = selp.Emplace<SelectorSkeleton>(*impl);
  wire::ObjectRef selector_ref = selp.runtime().Export(skel);
  impl->ReportLoad("1", 10);
  impl->ReportLoad("2", 3);

  sim::Process& client = SpawnClient();
  NameClient nc(client.runtime(), servers_[0]->host());
  ASSERT_TRUE(Wait(nc.BindNewContext("svc")).ok());
  ASSERT_TRUE(Wait(nc.BindReplContext("svc/mds")).ok());
  ASSERT_TRUE(Wait(nc.Bind("svc/mds/1", FakeRef(1, 1))).ok());
  ASSERT_TRUE(Wait(nc.Bind("svc/mds/2", FakeRef(2, 2))).ok());
  ASSERT_TRUE(Wait(nc.SetSelectorObject("svc/mds", selector_ref)).ok());

  auto r = Wait(nc.Resolve("svc/mds"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, FakeRef(2, 2));  // Least loaded.

  impl->ReportLoad("2", 30);
  auto r2 = Wait(nc.Resolve("svc/mds"));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, FakeRef(1, 1));
}

TEST_F(SingleReplicaTest, DeadCustomSelectorFallsBackToFirst) {
  sim::Process& selp = servers_[0]->Spawn("selector-svc");
  auto* impl = selp.Emplace<LeastLoadedSelector>();
  auto* skel = selp.Emplace<SelectorSkeleton>(*impl);
  wire::ObjectRef selector_ref = selp.runtime().Export(skel);

  sim::Process& client = SpawnClient();
  NameClient nc(client.runtime(), servers_[0]->host());
  ASSERT_TRUE(Wait(nc.BindNewContext("svc")).ok());
  ASSERT_TRUE(Wait(nc.BindReplContext("svc/mds")).ok());
  ASSERT_TRUE(Wait(nc.Bind("svc/mds/1", FakeRef(1, 1))).ok());
  ASSERT_TRUE(Wait(nc.Bind("svc/mds/2", FakeRef(2, 2))).ok());
  ASSERT_TRUE(Wait(nc.SetSelectorObject("svc/mds", selector_ref)).ok());

  servers_[0]->Kill(selp.pid());
  cluster_.RunFor(Duration::Millis(100));
  auto r = Wait(nc.Resolve("svc/mds"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, FakeRef(1, 1));
  EXPECT_GE(cluster_.metrics().Get("ns.selector.fallback"), 1u);
}

TEST_F(SingleReplicaTest, ListAppliesSelectorListReplDoesNot) {
  sim::Process& client = SpawnClient();
  NameClient nc(client.runtime(), servers_[0]->host());
  ASSERT_TRUE(Wait(nc.BindReplContext("rds")).ok());
  ASSERT_TRUE(Wait(nc.Bind("rds/1", FakeRef(1, 1))).ok());
  ASSERT_TRUE(Wait(nc.Bind("rds/2", FakeRef(2, 2))).ok());

  auto selected = Wait(nc.List("rds"));
  ASSERT_TRUE(selected.ok());
  ASSERT_EQ(selected->size(), 1u);
  EXPECT_EQ((*selected)[0].name, "1");

  auto all = Wait(nc.ListRepl("rds"));
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);  // Selector binding excluded? No selector bound.
}

TEST_F(SingleReplicaTest, BootstrapRefSurvivesNameServiceRestart) {
  sim::Process& client = SpawnClient();
  NameClient nc(client.runtime(), servers_[0]->host());
  ASSERT_TRUE(Wait(nc.BindNewContext("svc")).ok());

  // Kill and restart the name service replica.
  servers_[0]->Kill(servers_[0]->FindProcessByName("nsd")->pid());
  cluster_.RunUntilIdle();
  replicas_[0] = nullptr;
  SpawnReplica(0);
  cluster_.RunFor(Duration::Seconds(5));

  // Same bootstrap reference keeps working (the name space is rebuilt by
  // service re-registration; here it is simply empty again).
  auto r = Wait(nc.BindNewContext("svc2"));
  EXPECT_TRUE(r.ok()) << r.status();
}

// --- Multi-replica ---------------------------------------------------------------

class ThreeReplicaTest : public NameServiceFixture {
 protected:
  ThreeReplicaTest() { BootNameService(3); }
};

TEST_F(ThreeReplicaTest, ExactlyOneMasterElected) {
  int masters = 0;
  for (auto& [i, ns] : replicas_) {
    masters += ns->is_master();
  }
  EXPECT_EQ(masters, 1);
  // All replicas agree on who the master is.
  uint32_t master_id = replicas_[0]->master_id();
  EXPECT_NE(master_id, 0u);
  EXPECT_EQ(replicas_[1]->master_id(), master_id);
  EXPECT_EQ(replicas_[2]->master_id(), master_id);
}

TEST_F(ThreeReplicaTest, UpdateThroughAnyReplicaReachesAll) {
  sim::Process& client = SpawnClient();
  // Talk to replica 3 specifically (may or may not be master).
  NameClient nc(client.runtime(), servers_[2]->host());
  ASSERT_TRUE(Wait(nc.BindNewContext("svc")).ok());
  ASSERT_TRUE(Wait(nc.Bind("svc/mms", FakeRef(7, 7))).ok());
  cluster_.RunFor(Duration::Seconds(3));  // Propagation.

  // Resolve locally at EVERY replica.
  for (size_t i = 0; i < 3; ++i) {
    sim::Process& c = SpawnClient("c" + std::to_string(i));
    NameClient local(c.runtime(), servers_[i]->host());
    auto r = Wait(local.Resolve("svc/mms"));
    ASSERT_TRUE(r.ok()) << "replica " << i << ": " << r.status();
    EXPECT_EQ(*r, FakeRef(7, 7));
  }
  // Trees converged structurally.
  EXPECT_TRUE(replicas_[0]->tree().StructurallyEquals(replicas_[1]->tree()));
  EXPECT_TRUE(replicas_[1]->tree().StructurallyEquals(replicas_[2]->tree()));
}

TEST_F(ThreeReplicaTest, ResolveIsServedLocallyWithoutMasterTraffic) {
  sim::Process& client = SpawnClient();
  NameClient nc(client.runtime(), servers_[0]->host());
  ASSERT_TRUE(Wait(nc.BindNewContext("svc")).ok());
  ASSERT_TRUE(Wait(nc.Bind("svc/x", FakeRef(1, 1))).ok());
  cluster_.RunFor(Duration::Seconds(3));

  uint64_t forwarded_before = cluster_.metrics().Get("ns.update.forwarded");
  // 50 resolves against a slave replica: no new forwards.
  NameServer* master = Master();
  ASSERT_NE(master, nullptr);
  size_t slave_index = 0;
  for (size_t i = 0; i < 3; ++i) {
    if (replicas_[i] != master) {
      slave_index = i;
      break;
    }
  }
  NameClient slave_nc(client.runtime(), servers_[slave_index]->host());
  for (int i = 0; i < 50; ++i) {
    auto r = Wait(slave_nc.Resolve("svc/x"), Duration::Seconds(1));
    ASSERT_TRUE(r.ok());
  }
  EXPECT_EQ(cluster_.metrics().Get("ns.update.forwarded"), forwarded_before);
}

TEST_F(ThreeReplicaTest, MasterCrashTriggersReelectionAndUpdatesResume) {
  sim::Process& client = SpawnClient();
  NameClient nc(client.runtime(), servers_[0]->host());
  ASSERT_TRUE(Wait(nc.BindNewContext("svc")).ok());
  cluster_.RunFor(Duration::Seconds(3));

  NameServer* master = Master();
  ASSERT_NE(master, nullptr);
  size_t master_index = 0;
  for (size_t i = 0; i < 3; ++i) {
    if (replicas_[i] == master) {
      master_index = i;
    }
  }
  servers_[master_index]->Kill(
      servers_[master_index]->FindProcessByName("nsd")->pid());
  replicas_.erase(master_index);
  cluster_.RunFor(Duration::Seconds(10));  // Re-election.

  int masters = 0;
  for (auto& [i, ns] : replicas_) {
    masters += ns->is_master();
  }
  EXPECT_EQ(masters, 1);

  // Updates flow again (through a surviving replica).
  size_t survivor = replicas_.begin()->first;
  NameClient nc2(client.runtime(), servers_[survivor]->host());
  auto r = Wait(nc2.Bind("svc/after", FakeRef(5, 5)), Duration::Seconds(10));
  EXPECT_TRUE(r.ok()) << r.status();
}

TEST_F(ThreeReplicaTest, QuorumLossFreezesUpdatesButReadsStayLocal) {
  // "Availability is improved because the name service is available as long
  // as a majority of replicas are alive" (Section 4.6) — and conversely:
  // below a majority, updates must stop (no split-brain), while resolves
  // keep being served from the survivor's local tree.
  sim::Process& client = SpawnClient();
  NameClient nc(client.runtime(), servers_[0]->host());
  ASSERT_TRUE(Wait(nc.BindNewContext("svc")).ok());
  ASSERT_TRUE(Wait(nc.Bind("svc/x", FakeRef(1, 1))).ok());
  cluster_.RunFor(Duration::Seconds(3));

  // Crash two of the three replicas' servers, keeping server 1.
  servers_[1]->Crash();
  servers_[2]->Crash();
  cluster_.RunFor(Duration::Seconds(15));  // Election attempts churn, fail.

  // Reads: still served locally by the survivor.
  auto read = Wait(nc.Resolve("svc/x"));
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, FakeRef(1, 1));

  // Writes: no master can exist with 1 of 3 replicas.
  auto write = Wait(nc.Bind("svc/y", FakeRef(2, 2)), Duration::Seconds(10));
  ASSERT_FALSE(write.ok());
  EXPECT_TRUE(IsUnavailable(write.status())) << write.status();

  // Quorum restored: a crashed server comes back with a fresh replica; the
  // two of three elect, catch up, and updates flow again.
  servers_[1]->Restart();
  SpawnReplica(1);
  cluster_.RunFor(Duration::Seconds(15));
  auto healed = Wait(nc.Bind("svc/y", FakeRef(2, 2)), Duration::Seconds(10));
  EXPECT_TRUE(healed.ok()) << healed.status();
}

TEST_F(ThreeReplicaTest, PartitionedMasterStepsDownNoSplitBrain) {
  // Partition the master onto the minority side: the quorum lease makes it
  // step down (refusing further updates), the majority elects a successor,
  // and after healing the old master follows the new one — updates made on
  // the majority side survive, and at no point do two masters accept writes.
  NameServer* master = Master();
  ASSERT_NE(master, nullptr);
  size_t master_index = 0;
  for (size_t i = 0; i < 3; ++i) {
    if (replicas_[i] == master) {
      master_index = i;
    }
  }
  uint32_t master_host = servers_[master_index]->host();
  for (size_t i = 0; i < 3; ++i) {
    if (i != master_index) {
      cluster_.network().Partition(master_host, servers_[i]->host(), true);
    }
  }
  cluster_.RunFor(Duration::Seconds(15));

  // Old master stepped down; exactly one master exists, on the majority side.
  EXPECT_FALSE(master->is_master());
  int masters = 0;
  for (auto& [i, ns] : replicas_) {
    masters += ns->is_master();
  }
  EXPECT_EQ(masters, 1);

  // Writes through the minority replica fail; through the majority succeed.
  sim::Process& minority_client = SpawnClient("minority");
  cluster_.network().Partition(minority_client.host(), master_host, false);
  NameClient minority_nc(minority_client.runtime(), master_host);
  auto blocked = Wait(minority_nc.BindNewContext("minority-write"),
                      Duration::Seconds(10));
  EXPECT_TRUE(IsUnavailable(blocked.status())) << blocked.status();

  size_t majority_index = (master_index + 1) % 3;
  sim::Process& majority_client = SpawnClient("majority");
  NameClient majority_nc(majority_client.runtime(),
                         servers_[majority_index]->host());
  ASSERT_TRUE(Wait(majority_nc.BindNewContext("svc"), Duration::Seconds(10)).ok());
  ASSERT_TRUE(
      Wait(majority_nc.Bind("svc/winner", FakeRef(9, 9)), Duration::Seconds(10))
          .ok());

  // Heal: the deposed master rejoins as a slave and catches up via snapshot.
  for (size_t i = 0; i < 3; ++i) {
    if (i != master_index) {
      cluster_.network().Partition(master_host, servers_[i]->host(), false);
    }
  }
  cluster_.RunFor(Duration::Seconds(15));
  EXPECT_FALSE(master->is_master());
  auto caught_up = Wait(minority_nc.Resolve("svc/winner"));
  ASSERT_TRUE(caught_up.ok()) << caught_up.status();
  EXPECT_EQ(*caught_up, FakeRef(9, 9));
}

TEST_F(ThreeReplicaTest, PartitionedReplicaCatchesUpViaSnapshot) {
  // Partition replica 3 from the others; write; heal; it catches up.
  NameServer* master = Master();
  ASSERT_NE(master, nullptr);
  size_t slave_index = 2;
  if (replicas_[2] == master) {
    slave_index = 1;
  }
  uint32_t slave_host = servers_[slave_index]->host();
  for (size_t i = 0; i < 3; ++i) {
    if (i != slave_index) {
      cluster_.network().Partition(slave_host, servers_[i]->host(), true);
    }
  }

  sim::Process& client = SpawnClient();
  size_t reachable = (slave_index + 1) % 3;
  NameClient nc(client.runtime(), servers_[reachable]->host());
  ASSERT_TRUE(Wait(nc.BindNewContext("svc"), Duration::Seconds(10)).ok());
  ASSERT_TRUE(Wait(nc.Bind("svc/x", FakeRef(3, 3)), Duration::Seconds(10)).ok());

  // Heal; heartbeats carry the master seq and trigger a snapshot fetch.
  for (size_t i = 0; i < 3; ++i) {
    if (i != slave_index) {
      cluster_.network().Partition(slave_host, servers_[i]->host(), false);
    }
  }
  cluster_.RunFor(Duration::Seconds(10));

  sim::Process& c2 = SpawnClient("c2");
  NameClient lagged(c2.runtime(), slave_host);
  auto r = Wait(lagged.Resolve("svc/x"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, FakeRef(3, 3));
  EXPECT_GE(cluster_.metrics().Get("ns.snapshot.installed"), 1u);
}

// --- Auditing -------------------------------------------------------------------

// Scripted liveness oracle standing in for the RAS.
class FakeAudit : public ObjectAudit {
 public:
  void MarkDead(const wire::ObjectRef& ref) { dead_.insert(KeyOf(ref)); }

  void CheckObjects(const std::vector<wire::ObjectRef>& refs,
                    std::function<void(std::vector<uint8_t>)> cb) override {
    std::vector<uint8_t> alive;
    alive.reserve(refs.size());
    for (const auto& ref : refs) {
      alive.push_back(dead_.count(KeyOf(ref)) == 0 ? 1 : 0);
    }
    cb(std::move(alive));
  }

 private:
  static std::string KeyOf(const wire::ObjectRef& ref) { return ref.ToString(); }
  std::set<std::string> dead_;
};

TEST_F(SingleReplicaTest, AuditRemovesDeadObjectsWithinInterval) {
  FakeAudit audit;
  replicas_[0]->SetAudit(&audit);

  sim::Process& client = SpawnClient();
  NameClient nc(client.runtime(), servers_[0]->host());
  ASSERT_TRUE(Wait(nc.BindNewContext("svc")).ok());
  wire::ObjectRef doomed = FakeRef(8, 8);
  ASSERT_TRUE(Wait(nc.Bind("svc/doomed", doomed)).ok());
  ASSERT_TRUE(Wait(nc.Bind("svc/healthy", FakeRef(9, 9))).ok());

  audit.MarkDead(doomed);
  cluster_.RunFor(Duration::Seconds(11));  // One audit sweep (10 s default).

  EXPECT_TRUE(IsNotFound(Wait(nc.Resolve("svc/doomed")).status()));
  auto healthy = Wait(nc.Resolve("svc/healthy"));
  EXPECT_TRUE(healthy.ok());
  EXPECT_GE(cluster_.metrics().Get("ns.audit.unbind"), 1u);
}

// --- Primary/backup ----------------------------------------------------------------

TEST_F(SingleReplicaTest, FirstBinderWinsSecondTakesOverAfterUnbind) {
  FakeAudit audit;
  replicas_[0]->SetAudit(&audit);

  sim::Process& client = SpawnClient();
  NameClient setup(client.runtime(), servers_[0]->host());
  ASSERT_TRUE(Wait(setup.BindNewContext("svc")).ok());

  sim::Process& p1 = SpawnClient("mms-1");
  sim::Process& p2 = SpawnClient("mms-2");
  wire::ObjectRef ref1 = FakeRef(1, 1);
  wire::ObjectRef ref2 = FakeRef(2, 2);

  auto* binder1 = p1.Emplace<PrimaryBinder>(
      p1.executor(), NameClient(p1.runtime(), servers_[0]->host()), "svc/mms",
      ref1);
  auto* binder2 = p2.Emplace<PrimaryBinder>(
      p2.executor(), NameClient(p2.runtime(), servers_[0]->host()), "svc/mms",
      ref2);
  binder1->Start();
  cluster_.RunFor(Duration::Seconds(1));
  binder2->Start();
  cluster_.RunFor(Duration::Seconds(2));

  EXPECT_TRUE(binder1->is_primary());
  EXPECT_FALSE(binder2->is_primary());
  auto r = Wait(setup.Resolve("svc/mms"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, ref1);

  // Primary dies: its binder stops (a dead process cannot re-assert), the
  // audit reports the object dead, the name service unbinds it, and the
  // backup's periodic retry binds within retry_interval (10 s).
  binder1->Stop();
  audit.MarkDead(ref1);
  cluster_.RunFor(Duration::Seconds(25));

  EXPECT_TRUE(binder2->is_primary());
  auto r2 = Wait(setup.Resolve("svc/mms"));
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(*r2, ref2);
  EXPECT_GT(binder2->bind_attempts(), 1u);
}

TEST_F(SingleReplicaTest, StopUnbindsSoBackupWinsWithoutAudit) {
  sim::Process& client = SpawnClient();
  NameClient setup(client.runtime(), servers_[0]->host());
  ASSERT_TRUE(Wait(setup.BindNewContext("svc")).ok());

  sim::Process& p1 = SpawnClient("mms-1");
  sim::Process& p2 = SpawnClient("mms-2");
  wire::ObjectRef ref1 = FakeRef(1, 1);
  wire::ObjectRef ref2 = FakeRef(2, 2);
  auto* binder1 = p1.Emplace<PrimaryBinder>(
      p1.executor(), NameClient(p1.runtime(), servers_[0]->host()), "svc/mms",
      ref1);
  auto* binder2 = p2.Emplace<PrimaryBinder>(
      p2.executor(), NameClient(p2.runtime(), servers_[0]->host()), "svc/mms",
      ref2);
  binder1->Start();
  cluster_.RunFor(Duration::Seconds(1));
  binder2->Start();
  cluster_.RunFor(Duration::Seconds(2));
  ASSERT_TRUE(binder1->is_primary());

  // A graceful stop (service shutting down in an orderly way) releases the
  // binding itself: no audit needed, so the name is free briefly and the
  // backup's next retry — not a 25 s fail-over — wins it.
  binder1->Stop();
  EXPECT_FALSE(binder1->running());
  cluster_.RunFor(Duration::Seconds(1));
  EXPECT_TRUE(IsNotFound(Wait(setup.Resolve("svc/mms")).status()));

  cluster_.RunFor(Duration::Seconds(12));  // One backup retry (10 s default).
  EXPECT_TRUE(binder2->is_primary());
  auto r = Wait(setup.Resolve("svc/mms"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, ref2);
}

TEST_F(SingleReplicaTest, StopDoesNotUnbindAnotherPrimarysBinding) {
  sim::Process& client = SpawnClient();
  NameClient setup(client.runtime(), servers_[0]->host());
  ASSERT_TRUE(Wait(setup.BindNewContext("svc")).ok());

  sim::Process& p1 = SpawnClient("mms-1");
  wire::ObjectRef ref1 = FakeRef(1, 1);
  wire::ObjectRef ref2 = FakeRef(2, 2);
  auto* binder = p1.Emplace<PrimaryBinder>(
      p1.executor(), NameClient(p1.runtime(), servers_[0]->host()), "svc/mms",
      ref1);
  binder->Start();
  cluster_.RunFor(Duration::Seconds(2));
  ASSERT_TRUE(binder->is_primary());

  // Between this replica losing the name and its stop, another replica bound
  // itself. The stop's unbind is conditional on the binding still being ours
  // — it must not evict the new primary.
  ASSERT_TRUE(Wait(setup.Unbind("svc/mms")).ok());
  ASSERT_TRUE(Wait(setup.Bind("svc/mms", ref2)).ok());
  binder->Stop();
  cluster_.RunFor(Duration::Seconds(2));

  auto r = Wait(setup.Resolve("svc/mms"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, ref2);
}

TEST_F(SingleReplicaTest, LivePrimaryReassertsAfterFalseUnbind) {
  sim::Process& client = SpawnClient();
  NameClient setup(client.runtime(), servers_[0]->host());
  ASSERT_TRUE(Wait(setup.BindNewContext("svc")).ok());

  sim::Process& p1 = SpawnClient("mms-1");
  wire::ObjectRef ref1 = FakeRef(1, 1);
  auto* binder = p1.Emplace<PrimaryBinder>(
      p1.executor(), NameClient(p1.runtime(), servers_[0]->host()), "svc/mms",
      ref1);
  binder->Start();
  cluster_.RunFor(Duration::Seconds(2));
  ASSERT_TRUE(binder->is_primary());

  // A transient fault convinced the audit the primary was dead and its
  // binding was removed — but the process is alive. The verify loop must
  // notice the missing binding and re-assert it without ever demoting.
  ASSERT_TRUE(Wait(setup.Unbind("svc/mms")).ok());
  cluster_.RunFor(Duration::Seconds(25));

  EXPECT_TRUE(binder->is_primary());
  EXPECT_EQ(binder->demotions(), 0u);
  auto r = Wait(setup.Resolve("svc/mms"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, ref1);
}

// --- Versioned shard-map publish (live resharding) ---------------------------

class ShardMapPublishTest : public SingleReplicaTest {
 protected:
  Result<wire::ShardMap> Publish(sim::Process& p, const wire::ShardMap& map,
                                 const std::string& base = "svc/mms") {
    auto out = std::make_shared<Result<wire::ShardMap>>(
        DeadlineExceededError("publish never completed"));
    PublishShardMap(p.executor(),
                    NameClient(p.runtime(), servers_[0]->host()), base, map,
                    [out](Result<wire::ShardMap> r) { *out = std::move(r); });
    cluster_.RunFor(Duration::Seconds(5));
    return *out;
  }

  Result<wire::ShardMap> ReadMap(const std::string& base = "svc/mms") {
    sim::Process& reader = SpawnClient("map-reader");
    NameClient nc(reader.runtime(), servers_[0]->host());
    auto r = Wait(nc.Resolve(wire::ShardMapPath(base)));
    if (!r.ok()) {
      return r.status();
    }
    if (!wire::IsShardMapRef(*r)) {
      return InternalError("not a shard map ref");
    }
    return wire::DecodeShardMapRef(*r);
  }
};

TEST_F(ShardMapPublishTest, FirstPublishBindsTheMap) {
  sim::Process& p = SpawnClient("mmsd-1");
  wire::ShardMap v1{4, 0xabcdefull};
  auto r = Publish(p, v1);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, v1);
  auto read = ReadMap();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, v1);
  EXPECT_EQ(read->version, 1u);
}

TEST_F(ShardMapPublishTest, NewerVersionSwapsOlderIsRefusedWithWinner) {
  sim::Process& p = SpawnClient("mmsd-1");
  wire::ShardMap v1{4, 0xabcdefull};
  ASSERT_TRUE(Publish(p, v1).ok());

  // The reshard controller publishes the successor: the CAS swaps v1 -> v2.
  wire::ShardMap v2 = wire::NextShardMap(v1, 8);
  auto r2 = Publish(p, v2);
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(*r2, v2);
  auto read = ReadMap();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->version, 2u);
  EXPECT_EQ(read->shard_count, 8u);

  // A replica restarting with its deployment-time v1 must NOT roll the
  // cluster back: the publish succeeds but reports the incumbent winner.
  auto again = Publish(p, v1);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(*again, v2);
  read = ReadMap();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->version, 2u);
}

TEST_F(ShardMapPublishTest, ConcurrentPublishersConvergeOnHighestVersion) {
  sim::Process& p1 = SpawnClient("mmsd-1");
  sim::Process& p2 = SpawnClient("mmsd-2");
  wire::ShardMap v1{4, 0x1234ull};
  wire::ShardMap v2 = wire::NextShardMap(v1, 8);

  // Both replicas publish at one virtual instant — a restart racing a
  // reshard. Whatever interleaving the CAS resolves to, the higher version
  // must end up bound: the v2 publisher must never be rolled back, while the
  // v1 publisher may legitimately complete before v2 exists (if its bind won
  // the race) or learn the v2 winner (if it lost).
  auto out1 = std::make_shared<Result<wire::ShardMap>>(
      DeadlineExceededError("pending"));
  auto out2 = std::make_shared<Result<wire::ShardMap>>(
      DeadlineExceededError("pending"));
  PublishShardMap(p1.executor(), NameClient(p1.runtime(), servers_[0]->host()),
                  "svc/mms", v1,
                  [out1](Result<wire::ShardMap> r) { *out1 = std::move(r); });
  PublishShardMap(p2.executor(), NameClient(p2.runtime(), servers_[0]->host()),
                  "svc/mms", v2,
                  [out2](Result<wire::ShardMap> r) { *out2 = std::move(r); });
  cluster_.RunFor(Duration::Seconds(10));

  ASSERT_TRUE(out1->ok()) << out1->status();
  ASSERT_TRUE(out2->ok()) << out2->status();
  EXPECT_EQ(**out2, v2);
  EXPECT_TRUE(**out1 == v1 || **out1 == v2);
  auto read = ReadMap();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, v2);

  // And a straggler re-publishing v1 afterwards cannot roll v2 back.
  auto late = Publish(p1, v1);
  ASSERT_TRUE(late.ok()) << late.status();
  EXPECT_EQ(*late, v2);
  read = ReadMap();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, v2);
}

TEST_F(ShardMapPublishTest, ForeignBindingIsFailedPrecondition) {
  sim::Process& p = SpawnClient("mmsd-1");
  NameClient setup(p.runtime(), servers_[0]->host());
  ASSERT_TRUE(Wait(setup.BindNewContext("svc")).ok());
  ASSERT_TRUE(Wait(setup.BindNewContext("svc/mms")).ok());
  ASSERT_TRUE(
      Wait(setup.Bind(wire::ShardMapPath("svc/mms"), FakeRef(5, 5))).ok());

  wire::ShardMap map{4, 0x77ull};
  auto r = Publish(p, map);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition) << r.status();
}

}  // namespace
}  // namespace itv::naming
