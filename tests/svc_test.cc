// Service controllers + full-cluster integration (paper Sections 6 and 8):
// boot sequence, SSC restart-on-failure, CSC placement/fail-over, and the
// end-to-end server-failure recovery path.

#include <gtest/gtest.h>

#include "src/svc/csc.h"
#include "src/svc/harness.h"
#include "src/svc/settop_manager.h"
#include "src/svc/ssc.h"

namespace itv::svc {
namespace {

// A trivial registerable service type: exports one counter object and binds
// it under a primary/backup name.
inline constexpr std::string_view kCounterInterface = "itv.test.Counter";

class CounterSkeleton : public rpc::Skeleton {
 public:
  std::string_view interface_name() const override { return kCounterInterface; }
  void Dispatch(uint32_t method_id, const wire::Bytes& args,
                const rpc::CallContext& ctx, rpc::ReplyFn reply) override {
    if (method_id != 1) {
      return rpc::ReplyBadMethod(reply, method_id);
    }
    return rpc::ReplyWith(reply, ++count_);
  }

 private:
  uint64_t count_ = 0;
};

class CounterProxy : public rpc::Proxy {
 public:
  using Proxy::Proxy;
  Future<uint64_t> Increment() const {
    return rpc::DecodeReply<uint64_t>(Call(1, {}));
  }
};

void RegisterCounterType(ClusterHarness& harness) {
  harness.RegisterServiceType("counterd", [](const ServiceContext& ctx) {
    auto* skel = ctx.process.Emplace<CounterSkeleton>();
    wire::ObjectRef ref = ctx.process.runtime().Export(skel);
    ServiceLifecycle::Hooks hooks;
    hooks.ready_objects = {ref};
    ctx.StartLifecycle("svc/counter", ref, std::move(hooks));
  });
}

class SvcTest : public ::testing::Test {
 protected:
  explicit SvcTest(size_t servers = 2) : harness_(MakeOptions(servers)) {
    RegisterCounterType(harness_);
  }

  static HarnessOptions MakeOptions(size_t servers) {
    HarnessOptions opts;
    opts.server_count = servers;
    return opts;
  }

  sim::Cluster& cluster() { return harness_.cluster(); }

  template <typename T>
  Result<T> Wait(Future<T> f, Duration limit = Duration::Seconds(5)) {
    cluster().RunFor(limit);
    if (!f.is_ready()) {
      return DeadlineExceededError("future not ready");
    }
    return f.result();
  }

  Result<wire::ObjectRef> ResolveAs(sim::Process& p, const std::string& path,
                                    Duration limit = Duration::Seconds(5)) {
    return Wait(harness_.ClientFor(p).Resolve(path), limit);
  }

  ClusterHarness harness_;
};

TEST_F(SvcTest, BootBringsUpBaseServices) {
  harness_.Boot();
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_NE(harness_.server(i).FindProcessByName("ssc"), nullptr);
    EXPECT_NE(harness_.server(i).FindProcessByName("nsd"), nullptr);
    EXPECT_NE(harness_.server(i).FindProcessByName("rasd"), nullptr);
  }
  EXPECT_NE(harness_.server(0).FindProcessByName("dbd"), nullptr);

  sim::Process& client = harness_.SpawnProcessOn(0, "client");
  EXPECT_TRUE(ResolveAs(client, "svc/db").ok());
  // The CSC has started the settop manager from the database config.
  EXPECT_TRUE(ResolveAs(client, std::string(kSettopManagerName)).ok());
  // Per-server RAS replicas are published behind the by-caller-host selector.
  auto ras = ResolveAs(client, "svc/ras");
  ASSERT_TRUE(ras.ok());
  EXPECT_EQ(ras->endpoint.host, harness_.HostOf(0));
}

TEST_F(SvcTest, PerServerRasSelectorPicksLocalReplica) {
  harness_.Boot();
  sim::Process& on1 = harness_.SpawnProcessOn(1, "client1");
  auto ras = ResolveAs(on1, "svc/ras");
  ASSERT_TRUE(ras.ok());
  EXPECT_EQ(ras->endpoint.host, harness_.HostOf(1));
}

TEST_F(SvcTest, CscPrimaryIsExclusive) {
  harness_.Boot();
  sim::Process& client = harness_.SpawnProcessOn(0, "client");
  auto csc_ref = ResolveAs(client, std::string(kCscName));
  ASSERT_TRUE(csc_ref.ok());
  CscProxy csc(client.runtime(), *csc_ref);
  auto primary = Wait(csc.IsPrimary());
  ASSERT_TRUE(primary.ok());
  EXPECT_TRUE(*primary);
}

TEST_F(SvcTest, CscStartsServiceAssignedPreBoot) {
  harness_.AssignService("counterd", harness_.HostOf(1));
  harness_.Boot();
  cluster().RunFor(Duration::Seconds(5));

  EXPECT_NE(harness_.server(1).FindProcessByName("counterd"), nullptr);
  sim::Process& client = harness_.SpawnProcessOn(0, "client");
  auto counter_ref = ResolveAs(client, "svc/counter");
  ASSERT_TRUE(counter_ref.ok());
  CounterProxy counter(client.runtime(), *counter_ref);
  auto v = Wait(counter.Increment());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 1u);
}

TEST_F(SvcTest, OperatorAssignStartsServiceAtRuntime) {
  harness_.Boot();
  ASSERT_EQ(harness_.server(0).FindProcessByName("counterd"), nullptr);

  sim::Process& ops = harness_.SpawnProcessOn(0, "ops");
  auto csc_ref = ResolveAs(ops, std::string(kCscName));
  ASSERT_TRUE(csc_ref.ok());
  CscProxy csc(ops.runtime(), *csc_ref);
  ASSERT_TRUE(Wait(csc.Assign("counterd", harness_.HostOf(0))).ok());
  cluster().RunFor(Duration::Seconds(5));
  EXPECT_NE(harness_.server(0).FindProcessByName("counterd"), nullptr);
}

TEST_F(SvcTest, OperatorMoveRelocatesService) {
  harness_.AssignService("counterd", harness_.HostOf(0));
  harness_.Boot();
  cluster().RunFor(Duration::Seconds(5));
  ASSERT_NE(harness_.server(0).FindProcessByName("counterd"), nullptr);

  sim::Process& ops = harness_.SpawnProcessOn(0, "ops");
  auto csc_ref = ResolveAs(ops, std::string(kCscName));
  ASSERT_TRUE(csc_ref.ok());
  CscProxy csc(ops.runtime(), *csc_ref);
  ASSERT_TRUE(Wait(csc.Assign("counterd", harness_.HostOf(1))).ok());
  ASSERT_TRUE(Wait(csc.Unassign("counterd", harness_.HostOf(0))).ok());
  cluster().RunFor(Duration::Seconds(8));

  EXPECT_EQ(harness_.server(0).FindProcessByName("counterd"), nullptr);
  EXPECT_NE(harness_.server(1).FindProcessByName("counterd"), nullptr);
}

TEST_F(SvcTest, SscRestartsCrashedServiceAndClientsRebind) {
  harness_.AssignService("counterd", harness_.HostOf(1));
  harness_.Boot();
  cluster().RunFor(Duration::Seconds(5));

  sim::Process* counterd = harness_.server(1).FindProcessByName("counterd");
  ASSERT_NE(counterd, nullptr);
  harness_.server(1).Kill(counterd->pid());
  cluster().RunFor(Duration::Seconds(2));

  // Restarted automatically by the SSC.
  sim::Process* restarted = harness_.server(1).FindProcessByName("counterd");
  ASSERT_NE(restarted, nullptr);
  EXPECT_GE(harness_.SscOn(1)->restarts_of("counterd"), 1u);

  // The old binding is audited out and the new instance binds; clients
  // re-resolve and reach the fresh object (count restarts from scratch —
  // no replicated state, paper Section 9.4).
  cluster().RunFor(Duration::Seconds(25));
  sim::Process& client = harness_.SpawnProcessOn(0, "client");
  auto counter_ref = ResolveAs(client, "svc/counter");
  ASSERT_TRUE(counter_ref.ok()) << counter_ref.status();
  CounterProxy counter(client.runtime(), *counter_ref);
  auto v = Wait(counter.Increment());
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(*v, 1u);
}

TEST_F(SvcTest, CscFailoverPromotesBackup) {
  harness_.Boot();
  // Find which server hosts the primary CSC.
  sim::Process& client = harness_.SpawnProcessOn(0, "client");
  auto csc_ref = ResolveAs(client, std::string(kCscName));
  ASSERT_TRUE(csc_ref.ok());
  uint32_t primary_host = csc_ref->endpoint.host;
  size_t primary_index = primary_host == harness_.HostOf(0) ? 0 : 1;

  sim::Process* cscd = harness_.server(primary_index).FindProcessByName("cscd");
  ASSERT_NE(cscd, nullptr);
  // Stop it through the SSC so it is NOT restarted (operator stop).
  SscProxy ssc(client.runtime(), SscRefAt(primary_host));
  ASSERT_TRUE(Wait(ssc.StopService("cscd")).ok());

  // Audit removes the dead binding; the backup's retry binds. With the
  // harness's 2 s bind retry + 10 s audit polls: well within 30 s.
  cluster().RunFor(Duration::Seconds(30));
  auto new_ref = ResolveAs(client, std::string(kCscName));
  ASSERT_TRUE(new_ref.ok()) << new_ref.status();
  EXPECT_NE(new_ref->endpoint.host, primary_host);
  CscProxy csc(client.runtime(), *new_ref);
  auto primary = Wait(csc.IsPrimary());
  ASSERT_TRUE(primary.ok());
  EXPECT_TRUE(*primary);
}

// The paper's headline failure story (Section 8): a whole server crashes;
// primary/backup services re-home; clients recover by re-resolving.
class ThreeServerSvcTest : public SvcTest {
 protected:
  ThreeServerSvcTest() : SvcTest(3) {}
};

TEST_F(ThreeServerSvcTest, ServerCrashFailsOverPrimaryBackupServices) {
  harness_.Boot();
  cluster().RunFor(Duration::Seconds(5));

  sim::Process& client = harness_.SpawnProcessOn(2, "client");
  auto mgr_before = ResolveAs(client, std::string(kSettopManagerName));
  ASSERT_TRUE(mgr_before.ok());
  uint32_t crashed_host = mgr_before->endpoint.host;
  size_t crashed_index = 0;
  for (size_t i = 0; i < 3; ++i) {
    if (harness_.HostOf(i) == crashed_host) {
      crashed_index = i;
    }
  }

  harness_.server(crashed_index).Crash();

  // Recovery chain: RAS peer polls declare the host's objects dead (~10-15 s)
  // -> NS master audit unbinds (<=10 s) -> backup settopmgr bind retry (2 s).
  // If the crashed server hosted the NS master, re-election (~3 s) precedes.
  cluster().RunFor(Duration::Seconds(45));

  auto mgr_after = ResolveAs(client, std::string(kSettopManagerName),
                             Duration::Seconds(10));
  ASSERT_TRUE(mgr_after.ok()) << mgr_after.status();
  EXPECT_NE(mgr_after->endpoint.host, crashed_host);

  // The promoted replica actually serves.
  SettopManagerProxy mgr(client.runtime(), *mgr_after);
  auto count = Wait(mgr.Count());
  ASSERT_TRUE(count.ok()) << count.status();
}

// The paper's future-work extension (Sections 6.3, 8.1), implemented behind
// CscService::Options::auto_migrate: when a server stays unreachable, the
// CSC re-homes its services onto the survivors.
class AutoMigrateSvcTest : public ::testing::Test {
 protected:
  AutoMigrateSvcTest() : harness_(MakeOptions()) {
    RegisterCounterType(harness_);
  }

  static HarnessOptions MakeOptions() {
    HarnessOptions opts;
    opts.server_count = 3;
    opts.csc.auto_migrate = true;
    opts.csc.migrate_after_failures = 3;
    return opts;
  }

  ClusterHarness harness_;
};

TEST_F(AutoMigrateSvcTest, ServicesMigrateOffCrashedServer) {
  harness_.AssignService("counterd", harness_.HostOf(2));
  harness_.Boot();
  harness_.cluster().RunFor(Duration::Seconds(5));
  ASSERT_NE(harness_.server(2).FindProcessByName("counterd"), nullptr);

  harness_.server(2).Crash();
  // 3 failed pings at 2 s + RPC timeouts + a reconcile to start elsewhere.
  harness_.cluster().RunFor(Duration::Seconds(40));

  bool running_elsewhere =
      harness_.server(0).FindProcessByName("counterd") != nullptr ||
      harness_.server(1).FindProcessByName("counterd") != nullptr;
  EXPECT_TRUE(running_elsewhere);
  EXPECT_GE(harness_.metrics().Get("csc.migration"), 1u);

  // The service is reachable again through the name space (audit removed the
  // dead binding; the migrated instance bound).
  sim::Process& client = harness_.SpawnProcessOn(0, "client");
  auto ref = harness_.ClientFor(client).Resolve("svc/counter");
  harness_.cluster().RunFor(Duration::Seconds(5));
  ASSERT_TRUE(ref.is_ready() && ref.result().ok())
      << (ref.is_ready() ? ref.result().status().ToString() : "pending");
  EXPECT_NE(ref.result()->endpoint.host, harness_.HostOf(2));
}

TEST_F(AutoMigrateSvcTest, RecoveredServerIsNotDoublePlaced) {
  harness_.AssignService("counterd", harness_.HostOf(2));
  harness_.Boot();
  harness_.cluster().RunFor(Duration::Seconds(5));

  harness_.server(2).Crash();
  harness_.cluster().RunFor(Duration::Seconds(40));
  ASSERT_GE(harness_.metrics().Get("csc.migration"), 1u);

  // The server comes back; its assignment moved away, so the CSC must NOT
  // start counterd there again (it stays wherever it migrated to).
  harness_.server(2).Restart();
  harness_.StartSsc(2);
  harness_.cluster().RunFor(Duration::Seconds(15));
  EXPECT_EQ(harness_.server(2).FindProcessByName("counterd"), nullptr);

  size_t instances = 0;
  for (size_t i = 0; i < 3; ++i) {
    instances += harness_.server(i).FindProcessByName("counterd") != nullptr;
  }
  EXPECT_EQ(instances, 1u);
}

TEST_F(ThreeServerSvcTest, RecoveredServerIsRepopulatedByCsc) {
  harness_.AssignService("counterd", harness_.HostOf(2));
  harness_.Boot();
  cluster().RunFor(Duration::Seconds(5));
  ASSERT_NE(harness_.server(2).FindProcessByName("counterd"), nullptr);

  harness_.server(2).Crash();
  cluster().RunFor(Duration::Seconds(5));
  harness_.server(2).Restart();
  // "init" restarts the SSC on the recovered machine; the CSC detects the
  // new SSC and instructs it to start the appropriate services (Section 6.3).
  harness_.StartSsc(2);
  cluster().RunFor(Duration::Seconds(15));

  EXPECT_NE(harness_.server(2).FindProcessByName("counterd"), nullptr);
  EXPECT_NE(harness_.server(2).FindProcessByName("nsd"), nullptr);
}

}  // namespace
}  // namespace itv::svc
