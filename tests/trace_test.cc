// Tests for the causal-tracing substrate (src/common/trace.h): ring-buffer
// semantics, tracer/context mechanics, the Chrome trace-event and metrics
// JSON exporters, FailoverTimeline reconstruction, and the end-to-end
// property the wire propagation exists for — a traced call that rides
// through a forced rebind keeps its own trace even when the binding layer
// coalesces the re-resolution across callers.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/rpc/binding_table.h"
#include "src/rpc/runtime.h"
#include "src/rpc/stub_helpers.h"
#include "src/sim/cluster.h"

namespace itv {
namespace {

using trace::EventKind;
using trace::TraceBuffer;
using trace::TraceContext;
using trace::TraceEvent;
using trace::Tracer;

TraceEvent Marker(std::string name, double at_s, std::string detail = {}) {
  TraceEvent e;
  e.kind = EventKind::kInstant;
  e.name = std::move(name);
  e.detail = std::move(detail);
  e.begin = Time() + Duration::Seconds(at_s);
  return e;
}

// --- TraceBuffer --------------------------------------------------------------

TEST(TraceBufferTest, PartialFillKeepsRecordingOrder) {
  TraceBuffer buf(8);
  for (int i = 0; i < 3; ++i) {
    buf.Push(Marker("e" + std::to_string(i), i));
  }
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.recorded(), 3u);
  EXPECT_EQ(buf.dropped(), 0u);
  std::vector<TraceEvent> events = buf.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(events[i].name, "e" + std::to_string(i));
  }
}

TEST(TraceBufferTest, OverflowEvictsOldestAndCountsDrops) {
  TraceBuffer buf(4);
  for (int i = 0; i < 10; ++i) {
    buf.Push(Marker("e" + std::to_string(i), i));
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.recorded(), 10u);
  EXPECT_EQ(buf.dropped(), 6u);
  // The survivors are the newest four, still in chronological order.
  std::vector<TraceEvent> events = buf.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].name, "e" + std::to_string(6 + i));
  }
}

TEST(TraceBufferTest, ZeroCapacityDropsEverything) {
  TraceBuffer buf(0);
  for (int i = 0; i < 3; ++i) {
    buf.Push(Marker("e", i));
  }
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.dropped(), 3u);
  EXPECT_TRUE(buf.Snapshot().empty());
}

// --- Tracer / ScopedContext ---------------------------------------------------

TEST(TracerTest, NullBufferDisablesRecordingAndPropagation) {
  Tracer tracer(nullptr, nullptr, "node", "proc", 1);
  EXPECT_FALSE(tracer.enabled());
  EXPECT_FALSE(tracer.StartTrace().valid());
  EXPECT_FALSE(tracer.Child(TraceContext{}).valid());
  tracer.Instant(TraceContext{}, "noop");  // Must not crash or record.
  trace::ScopedContext with_tracer(&tracer, TraceContext{});
  trace::ScopedContext without_tracer(nullptr, TraceContext{});
}

TEST(TracerTest, ChildSpansShareTraceAndLinkParents) {
  sim::Cluster cluster;
  sim::Node& node = cluster.AddServer("n1");
  sim::Process& proc = node.Spawn("proc");
  Tracer& tracer = proc.tracer();

  TraceContext root = tracer.StartTrace();
  ASSERT_TRUE(root.valid());
  TraceContext child = tracer.Child(root);
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_EQ(child.parent_span_id, root.span_id);
  EXPECT_NE(child.span_id, root.span_id);

  Time begin = tracer.now();
  cluster.RunFor(Duration::Millis(5));
  tracer.Span(child, "unit.child", begin, "payload");
  tracer.Instant(root, "unit.mark");

  std::vector<TraceEvent> events = cluster.trace_buffer().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kSpan);
  EXPECT_EQ(events[0].name, "unit.child");
  EXPECT_EQ(events[0].detail, "payload");
  EXPECT_EQ(events[0].duration, Duration::Millis(5));
  EXPECT_EQ(events[0].node, "n1");
  EXPECT_EQ(events[0].process, "proc");
  EXPECT_EQ(events[1].kind, EventKind::kInstant);
  EXPECT_EQ(events[1].trace_id, root.trace_id);
}

TEST(TracerTest, ScopedContextNestsAndRestores) {
  sim::Cluster cluster;
  sim::Process& proc = cluster.AddServer("n1").Spawn("proc");
  Tracer& tracer = proc.tracer();
  TraceContext outer = tracer.StartTrace();
  TraceContext inner = tracer.Child(outer);

  EXPECT_FALSE(tracer.current().valid());
  {
    trace::ScopedContext a(&tracer, outer);
    EXPECT_EQ(tracer.current(), outer);
    {
      trace::ScopedContext b(&tracer, inner);
      EXPECT_EQ(tracer.current(), inner);
    }
    EXPECT_EQ(tracer.current(), outer);
  }
  EXPECT_FALSE(tracer.current().valid());
}

// --- Exporters ----------------------------------------------------------------

TEST(ExportTest, ChromeTraceJsonIsLoadable) {
  sim::Cluster cluster;
  sim::Process& a = cluster.AddServer("alpha").Spawn("svc-a");
  sim::Process& b = cluster.AddServer("beta").Spawn("svc-b");

  TraceContext root = a.tracer().StartTrace();
  Time begin = a.tracer().now();
  cluster.RunFor(Duration::Millis(3));
  a.tracer().Span(root, "alpha.work", begin, "detail with \"quotes\"");
  b.tracer().Instant(b.tracer().Child(root), "beta.mark");

  std::string json = trace::ChromeTraceJson(cluster.trace_buffer());
  std::string error;
  EXPECT_TRUE(trace::ValidateChromeTrace(json, &error)) << error;
  // Both nodes appear as named trace processes; both events survive.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("alpha"), std::string::npos);
  EXPECT_NE(json.find("beta.mark"), std::string::npos);
}

TEST(ExportTest, EmptyBufferStillEmitsValidJsonSyntax) {
  TraceBuffer empty;
  std::string json = trace::ChromeTraceJson(empty);
  std::string error;
  EXPECT_TRUE(json::ValidateSyntax(json, &error)) << error;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(ExportTest, MetricsDumpJsonIsValidAndComplete) {
  Metrics m;
  m.Add("chaos.kills", 7);
  m.Add("weird\"na\\me", 1);  // Escaping must keep the document valid.
  m.SetGauge("queue.depth", -2);
  m.Observe("open.latency", 1.5);
  m.Observe("open.latency", 2.5);

  std::string dump = m.DumpJson();
  std::string error;
  EXPECT_TRUE(json::ValidateSyntax(dump, &error)) << error;
  EXPECT_NE(dump.find("\"chaos.kills\":7"), std::string::npos);
  EXPECT_NE(dump.find("\"queue.depth\":-2"), std::string::npos);
  EXPECT_NE(dump.find("\"open.latency\""), std::string::npos);
  EXPECT_NE(dump.find("\"count\":2"), std::string::npos);
}

// --- FailoverTimeline ---------------------------------------------------------

TEST(FailoverTimelineTest, ReconstructsPaperCausalChain) {
  Time kill = Time() + Duration::Seconds(10);
  std::vector<TraceEvent> events;
  // Noise that must be ignored: a pre-kill bind (stale), an unbind for a
  // different service, a bind for a different service.
  events.push_back(Marker(std::string(trace::kEventBindPrimary), 5, "svc/target"));
  events.push_back(Marker(std::string(trace::kEventPeerDead), 12, "host=2"));
  events.push_back(Marker(std::string(trace::kEventAuditUnbind), 13, "svc/other"));
  events.push_back(Marker(std::string(trace::kEventAuditUnbind), 18, "svc/target"));
  events.push_back(Marker(std::string(trace::kEventBindPrimary), 20, "svc/other"));
  events.push_back(Marker(std::string(trace::kEventBindPrimary), 25, "svc/target"));

  trace::FailoverTimeline t =
      trace::FailoverTimeline::Reconstruct(events, kill, "svc/target");
  ASSERT_TRUE(t.complete());
  EXPECT_EQ(t.detect_delay(), Duration::Seconds(2));
  EXPECT_EQ(t.unbind_delay(), Duration::Seconds(6));
  EXPECT_EQ(t.rebind_delay(), Duration::Seconds(7));
  EXPECT_EQ(t.total(), Duration::Seconds(15));

  std::string report = t.Report();
  EXPECT_NE(report.find("ras.peer_dead"), std::string::npos);
  EXPECT_NE(report.find("total kill->primary"), std::string::npos);
}

TEST(FailoverTimelineTest, OutOfOrderMarkersLeaveTimelineIncomplete) {
  Time kill = Time() + Duration::Seconds(10);
  std::vector<TraceEvent> events;
  // A rebind observed before any detection is not this fail-over's chain.
  events.push_back(Marker(std::string(trace::kEventBindPrimary), 11, "svc/target"));
  events.push_back(Marker(std::string(trace::kEventPeerDead), 12, "host=2"));

  trace::FailoverTimeline t =
      trace::FailoverTimeline::Reconstruct(events, kill, "svc/target");
  EXPECT_FALSE(t.complete());
  ASSERT_TRUE(t.detected_at.has_value());
  EXPECT_FALSE(t.unbound_at.has_value());
  // Missing phases read as zero, not garbage.
  EXPECT_EQ(t.unbind_delay(), Duration());
  EXPECT_EQ(t.rebind_delay(), Duration());
  EXPECT_EQ(t.total(), Duration());
}

TEST(FailoverTimelineTest, OverlappingFailoversReconstructIndependently) {
  // Two services fail over in the same window (a chaos schedule routinely
  // kills several victims back to back). One shared event stream; each
  // timeline must be reconstructed from its own kill time and binding path,
  // ignoring the other fail-over's markers.
  std::vector<TraceEvent> events;
  events.push_back(Marker(std::string(trace::kEventPeerDead), 12, "host=2"));
  events.push_back(Marker(std::string(trace::kEventPeerDead), 15, "host=3"));
  events.push_back(Marker(std::string(trace::kEventAuditUnbind), 18, "svc/alpha"));
  events.push_back(Marker(std::string(trace::kEventAuditUnbind), 20, "svc/beta"));
  events.push_back(Marker(std::string(trace::kEventBindPrimary), 24, "svc/alpha"));
  events.push_back(Marker(std::string(trace::kEventBindPrimary), 28, "svc/beta"));

  trace::FailoverTimeline alpha = trace::FailoverTimeline::Reconstruct(
      events, Time() + Duration::Seconds(10), "svc/alpha");
  ASSERT_TRUE(alpha.complete()) << alpha.Report();
  EXPECT_EQ(alpha.detect_delay(), Duration::Seconds(2));
  EXPECT_EQ(alpha.unbind_delay(), Duration::Seconds(6));
  EXPECT_EQ(alpha.rebind_delay(), Duration::Seconds(6));
  EXPECT_EQ(alpha.total(), Duration::Seconds(14));

  trace::FailoverTimeline beta = trace::FailoverTimeline::Reconstruct(
      events, Time() + Duration::Seconds(14), "svc/beta");
  ASSERT_TRUE(beta.complete()) << beta.Report();
  // Alpha's earlier detection marker predates beta's kill and is skipped.
  EXPECT_EQ(beta.detect_delay(), Duration::Seconds(1));
  EXPECT_EQ(beta.unbind_delay(), Duration::Seconds(5));
  EXPECT_EQ(beta.rebind_delay(), Duration::Seconds(8));
  EXPECT_EQ(beta.total(), Duration::Seconds(14));
}

// --- End-to-end propagation through the binding layer -------------------------

inline constexpr std::string_view kEchoInterface = "itv.test.TraceEcho";

enum EchoMethod : uint32_t { kEchoMethodPing = 1 };

class EchoSkeleton : public rpc::Skeleton {
 public:
  std::string_view interface_name() const override { return kEchoInterface; }
  void Dispatch(uint32_t method_id, const wire::Bytes& args,
                const rpc::CallContext& ctx, rpc::ReplyFn reply) override {
    if (method_id != kEchoMethodPing) {
      return rpc::ReplyBadMethod(reply, method_id);
    }
    ++pings;
    return rpc::ReplyWith(reply, pings);
  }
  uint64_t pings = 0;
};

class EchoProxy : public rpc::Proxy {
 public:
  using Proxy::Proxy;
  Future<uint64_t> Ping() const {
    return rpc::DecodeReply<uint64_t>(Call(kEchoMethodPing, {}));
  }
};

class TracePropagationTest : public ::testing::Test {
 protected:
  TracePropagationTest() {
    server_ = &cluster_.AddServer("forge");
    client_ = &cluster_.AddServer("kiln").Spawn("client");
    SpawnService();
  }

  void SpawnService() {
    server_proc_ = &server_->Spawn("echo", 700);
    skeleton_ = server_proc_->Emplace<EchoSkeleton>();
    current_ref_ = server_proc_->runtime().Export(skeleton_);
  }

  rpc::PathResolver MakeResolver() {
    return [this](const std::string& path,
                  std::function<void(Result<wire::ObjectRef>)> cb) {
      ++resolve_calls_;
      Result<wire::ObjectRef> r(current_ref_);
      client_->executor().ScheduleAfter(Duration::Millis(10),
                                        [cb, r] { cb(r); });
    };
  }

  sim::Cluster cluster_;
  sim::Node* server_ = nullptr;
  sim::Process* server_proc_ = nullptr;
  sim::Process* client_ = nullptr;
  EchoSkeleton* skeleton_ = nullptr;
  wire::ObjectRef current_ref_;
  int resolve_calls_ = 0;
};

TEST_F(TracePropagationTest, UntracedCallsRecordNothing) {
  auto* table = client_->Emplace<rpc::BindingTable>(client_->runtime(),
                                                    MakeResolver());
  auto echo = table->Bind<EchoProxy>("svc/echo");
  bool ok = false;
  echo.Call<uint64_t>([](const EchoProxy& p) { return p.Ping(); },
                      [&](Result<uint64_t> r) { ok = r.ok(); });
  cluster_.RunFor(Duration::Seconds(1));
  ASSERT_TRUE(ok);
  EXPECT_EQ(cluster_.trace_buffer().size(), 0u);
}

TEST_F(TracePropagationTest, DistinctTracesSurviveCoalescedRebind) {
  auto* table = client_->Emplace<rpc::BindingTable>(client_->runtime(),
                                                    MakeResolver());
  rpc::BindingOptions opts;  // No jitter so the retry storm truly collides.
  opts.initial_backoff = Duration::Millis(50);
  auto echo = table->Bind<EchoProxy>("svc/echo", opts);

  // Warm the binding (untraced), then restart the service so every traced
  // call below fails against the stale reference and wants to rebind.
  bool warm = false;
  echo.Call<uint64_t>([](const EchoProxy& p) { return p.Ping(); },
                      [&](Result<uint64_t> r) { warm = r.ok(); });
  cluster_.RunFor(Duration::Seconds(1));
  ASSERT_TRUE(warm);
  server_->Kill(server_proc_->pid());
  cluster_.RunUntilIdle();
  SpawnService();

  constexpr int kCalls = 6;
  Tracer& tracer = client_->tracer();
  std::vector<uint64_t> trace_ids;
  int ok = 0;
  for (int i = 0; i < kCalls; ++i) {
    TraceContext root = tracer.StartTrace();
    trace_ids.push_back(root.trace_id);
    trace::ScopedContext scoped(&tracer, root);
    echo.Call<uint64_t>([](const EchoProxy& p) { return p.Ping(); },
                        [&](Result<uint64_t> r) { ok += r.ok(); });
  }
  cluster_.RunFor(Duration::Seconds(10));
  ASSERT_EQ(ok, kCalls);
  // The rebind storm was coalesced: one warm-up resolve, one shared retry.
  EXPECT_EQ(resolve_calls_, 2);

  std::vector<TraceEvent> events = cluster_.trace_buffer().Snapshot();
  auto in_trace = [&](const TraceEvent& e) {
    return std::find(trace_ids.begin(), trace_ids.end(), e.trace_id) !=
           trace_ids.end();
  };

  // Coalescing did not merge the traces: every caller's own trace still
  // shows its client-side call span and its own rebind retry marker.
  for (uint64_t id : trace_ids) {
    bool call_span = false;
    bool attempt = false;
    for (const TraceEvent& e : events) {
      if (e.trace_id != id) {
        continue;
      }
      call_span |= e.name == "rpc.call" && e.kind == EventKind::kSpan;
      attempt |= e.name == "rebind.attempt";
    }
    EXPECT_TRUE(call_span) << "trace " << id;
    EXPECT_TRUE(attempt) << "trace " << id;
  }

  // The shared resolve ran once and belongs to exactly one caller's trace
  // (the single-flight leader), not to a merged or orphan context.
  std::vector<const TraceEvent*> resolves;
  for (const TraceEvent& e : events) {
    if (e.name == "rebind.resolve") {
      resolves.push_back(&e);
    }
  }
  ASSERT_EQ(resolves.size(), 1u);
  EXPECT_TRUE(in_trace(*resolves[0]));
  EXPECT_NE(resolves[0]->detail.find("svc/echo"), std::string::npos);

  // The contexts crossed the wire: the server process recorded dispatch
  // spans inside the callers' traces, under its own identity.
  int server_spans = 0;
  for (const TraceEvent& e : events) {
    if (e.name == "rpc.server" && in_trace(e)) {
      ++server_spans;
      EXPECT_EQ(e.node, "forge");
    }
  }
  EXPECT_GE(server_spans, kCalls);
}

}  // namespace
}  // namespace itv
