// Scheduler microbenchmark: pooled intrusive heap vs the seed implementation.
//
// The seed scheduler kept a priority_queue of (when, seq, id) entries plus an
// unordered_map<TimerId, std::function> for handlers; cancellation erased the
// map entry and left a tombstone in the queue. LegacyScheduler below is that
// implementation, kept verbatim (modulo the Executor base) so the comparison
// stays reproducible in CI after the seed code is gone. Both schedulers run
// identical workloads at 1M timers; the report records events/sec and the
// speedup, and an order-recording pass proves the replacement preserves the
// (when, seq) FIFO execution order exactly.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_report.h"
#include "src/common/logging.h"
#include "src/common/time.h"
#include "src/sim/scheduler.h"

namespace itv {
namespace {

using TimerId = uint64_t;

// --- Seed scheduler (frozen copy) --------------------------------------------

class LegacyScheduler {
 public:
  Time Now() const { return now_; }

  TimerId ScheduleAt(Time when, std::function<void()> fn) {
    ITV_CHECK(fn != nullptr);
    if (when < now_) {
      when = now_;
    }
    TimerId id = next_id_++;
    handlers_.emplace(id, std::move(fn));
    queue_.push(Entry{when, next_seq_++, id});
    return id;
  }

  bool Cancel(TimerId id) { return handlers_.erase(id) > 0; }

  void RunUntilIdle(uint64_t max_events = 10000000) {
    uint64_t steps = 0;
    while (!queue_.empty()) {
      ITV_CHECK(steps++ < max_events)
          << "RunUntilIdle exhausted its event budget";
      RunOne();
    }
  }

 private:
  struct Entry {
    Time when;
    uint64_t seq;
    TimerId id;
    bool operator>(const Entry& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  void RunOne() {
    Entry e = queue_.top();
    queue_.pop();
    auto it = handlers_.find(e.id);
    if (it == handlers_.end()) {
      return;  // Cancelled.
    }
    std::function<void()> fn = std::move(it->second);
    handlers_.erase(it);
    now_ = e.when;
    ++executed_;
    fn();
  }

  Time now_;
  uint64_t next_id_ = 1;
  uint64_t next_seq_ = 1;
  uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  std::unordered_map<TimerId, std::function<void()>> handlers_;
};

// --- Workloads ----------------------------------------------------------------

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// Mixed workload (the acceptance-criterion shape): schedule n timers at
// pseudo-random times, cancel every other one, schedule n/2 replacements,
// then drain. Returns ops/sec over schedules + cancels + executions;
// `order` (optional) records execution order for the determinism check.
template <typename Sched>
double RunMixed(size_t n, std::vector<uint32_t>* order) {
  Sched s;
  std::vector<TimerId> ids(n + n / 2, 0);
  uint64_t rng = 0x12345678;
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    Time when = Time::FromNanos(SplitMix64(rng) % 10'000'000);
    uint32_t tag = static_cast<uint32_t>(i);
    ids[i] = s.ScheduleAt(when, [order, tag] {
      if (order != nullptr) {
        order->push_back(tag);
      }
    });
  }
  for (size_t i = 0; i < n; i += 2) {
    ITV_CHECK(s.Cancel(ids[i]));
  }
  for (size_t i = n; i < n + n / 2; ++i) {
    Time when = Time::FromNanos(SplitMix64(rng) % 10'000'000);
    uint32_t tag = static_cast<uint32_t>(i);
    ids[i] = s.ScheduleAt(when, [order, tag] {
      if (order != nullptr) {
        order->push_back(tag);
      }
    });
  }
  s.RunUntilIdle(2 * n + 16);
  double elapsed = SecondsSince(start);
  double ops = static_cast<double>(3 * n);  // 1.5n scheduled, 0.5n cancelled, n run.
  return ops / elapsed;
}

// Timeout-churn workload: the RPC runtime's pattern — arm a far-future
// timeout, cancel it when the reply lands. The seed implementation leaves a
// tombstone in the queue per cancel; the pooled heap compacts them away.
template <typename Sched>
double RunChurn(size_t n) {
  Sched s;
  uint64_t fired = 0;
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    TimerId id =
        s.ScheduleAt(Time::FromNanos(1'000'000'000 + i), [&fired] { ++fired; });
    ITV_CHECK(s.Cancel(id));
  }
  s.RunUntilIdle(n + 16);
  double elapsed = SecondsSince(start);
  ITV_CHECK(fired == 0);
  return static_cast<double>(2 * n) / elapsed;
}

template <typename F>
double BestOf(int reps, F&& fn) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    double v = fn();
    if (v > best) {
      best = v;
    }
  }
  return best;
}

}  // namespace
}  // namespace itv

int main(int argc, char** argv) {
  using namespace itv;
  size_t n = 1'000'000;
  if (argc > 1) {
    n = static_cast<size_t>(std::strtoull(argv[1], nullptr, 10));
  }

  // Determinism: both schedulers must execute the identical workload in the
  // identical order (equal-time FIFO preserved by the pooled heap).
  std::vector<uint32_t> legacy_order;
  std::vector<uint32_t> pooled_order;
  size_t order_n = n < 100'000 ? n : 100'000;
  (void)RunMixed<LegacyScheduler>(order_n, &legacy_order);
  (void)RunMixed<sim::Scheduler>(order_n, &pooled_order);
  bool order_match = legacy_order == pooled_order;
  ITV_CHECK(order_match) << "execution order diverged from seed scheduler";

  double legacy_mixed = BestOf(3, [n] { return RunMixed<LegacyScheduler>(n, nullptr); });
  double pooled_mixed = BestOf(3, [n] { return RunMixed<sim::Scheduler>(n, nullptr); });
  double legacy_churn = BestOf(3, [n] { return RunChurn<LegacyScheduler>(n); });
  double pooled_churn = BestOf(3, [n] { return RunChurn<sim::Scheduler>(n); });

  double mixed_speedup = pooled_mixed / legacy_mixed;
  double churn_speedup = pooled_churn / legacy_churn;

  std::printf("scheduler benchmark, n=%zu timers (events/sec, best of 3)\n", n);
  std::printf("  %-22s %14s %14s %8s\n", "workload", "legacy", "pooled", "speedup");
  std::printf("  %-22s %14.0f %14.0f %7.2fx\n", "mixed sched/cancel/run",
              legacy_mixed, pooled_mixed, mixed_speedup);
  std::printf("  %-22s %14.0f %14.0f %7.2fx\n", "timeout churn",
              legacy_churn, pooled_churn, churn_speedup);
  std::printf("  order match vs seed: %s (%zu events)\n",
              order_match ? "yes" : "NO", legacy_order.size());

  bench::ReportSection report("bench_scheduler");
  report.SetInt("timers", n);
  report.Set("legacy_mixed_events_per_sec", legacy_mixed);
  report.Set("pooled_mixed_events_per_sec", pooled_mixed);
  report.Set("mixed_speedup", mixed_speedup);
  report.Set("legacy_churn_events_per_sec", legacy_churn);
  report.Set("pooled_churn_events_per_sec", pooled_churn);
  report.Set("churn_speedup", churn_speedup);
  report.SetText("order_match", order_match ? "yes" : "no");
  report.WriteMerged();
  return 0;
}
