// Experiment E1 — Fail-over speed (paper Section 9.7).
//
// "The speed of primary/backup recovery is determined by three parameters:
//  the interval at which the backup retries to bind into the name space; the
//  interval at which the name service polls the local RAS; and the interval
//  at which the RAS on the name service master's host polls the RASs on the
//  other machines... Backup retries bind every 10 seconds; name service
//  polls RAS every 10 seconds; RAS polls other RASs every 5 seconds. This
//  gives a maximum fail over time of 25 seconds."
//
// Harness: a primary/backup service pair on servers 2 and 3 (the name
// service master lives on server 1). The primary's whole server crashes at a
// pseudo-random phase relative to the polling clocks; a client on server 1
// re-resolves until the backup's binding appears. Repeated over many trials
// per parameter setting; the observed maximum should approach the sum of the
// three intervals (plus the RAS RPC timeout that detects the dead peer) and
// the mean about half of it.

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "src/common/rand.h"
#include "src/common/trace.h"
#include "src/media/factories.h"
#include "src/media/mms.h"
#include "src/naming/name_client.h"
#include "src/rpc/binding_table.h"
#include "src/rpc/shard_router.h"
#include "src/settop/vod_app.h"
#include "src/svc/harness.h"
#include "src/svc/settop_manager.h"
#include "src/wire/shard_map.h"

namespace itv {
namespace {

struct Params {
  double bind_retry_s;
  double ns_audit_s;
  double ras_poll_s;
};

struct TrialResult {
  Histogram failover_s;
  // The client-library view: a call through a primed binding issued at crash
  // time; the binding layer re-resolves until the backup answers.
  Histogram client_s;
  // Per-phase decomposition reconstructed from the trace buffer
  // (trace::FailoverTimeline): kill -> ras.peer_dead -> ns.audit.unbind ->
  // bind.primary.
  Histogram detect_s;
  Histogram unbind_s;
  Histogram rebind_s;
  int timelines_complete = 0;
  std::string sample_report;  // One trial's human-readable decomposition.
  uint64_t rebinds = 0;  // rebind.count across trials (lookups issued).
  int failures = 0;
};

TrialResult RunTrials(const Params& params, int trials, uint64_t seed) {
  TrialResult out;
  Rng rng(seed);
  for (int trial = 0; trial < trials; ++trial) {
    svc::HarnessOptions opts;
    opts.server_count = 3;
    opts.ns.audit_interval = Duration::Seconds(params.ns_audit_s);
    opts.ras.peer_poll_interval = Duration::Seconds(params.ras_poll_s);
    opts.ras.peer_failures_to_dead = 1;  // The paper counts one missed poll.
    opts.ras.rpc_timeout = Duration::Seconds(1);
    opts.start_csc = false;  // Nothing here needs placement management.
    svc::ClusterHarness harness(opts);
    harness.Boot();

    svc::ServiceLifecycle::Options lc_opts;
    lc_opts.binder.retry_interval = Duration::Seconds(params.bind_retry_s);

    // Primary on server 2 (bound first), backup on server 3.
    auto spawn_replica = [&](size_t server_index) -> sim::Process& {
      sim::Process& p = harness.SpawnProcessOn(server_index, "target");
      auto* skeleton = p.Emplace<svc::SettopManagerService>(p.executor());
      wire::ObjectRef ref = p.runtime().Export(skeleton);
      auto* lifecycle = p.Emplace<svc::ServiceLifecycle>(
          p, harness.ClientFor(p), "svc/target", ref, lc_opts,
          &harness.metrics());
      svc::ServiceLifecycle::Hooks hooks;
      hooks.ready_objects = {ref};
      lifecycle->Start(std::move(hooks));
      return p;
    };
    spawn_replica(1);
    harness.cluster().RunFor(Duration::Seconds(2));
    spawn_replica(2);
    harness.cluster().RunFor(Duration::Seconds(5));

    sim::Process& client = harness.SpawnProcessOn(0, "probe");
    naming::NameClient nc = harness.ClientFor(client);

    wire::ObjectRef primary_ref;
    auto resolve_host = [&]() -> uint32_t {
      auto f = nc.Resolve("svc/target");
      auto r = bench::WaitOn(harness.cluster(), f, Duration::Seconds(3));
      if (!r.ok()) {
        return 0;
      }
      primary_ref = *r;
      return r->endpoint.host;
    };
    if (resolve_host() != harness.HostOf(1)) {
      ++out.failures;  // Primary did not establish; skip trial.
      continue;
    }

    // Crash at a pseudo-random phase of ALL the polling clocks (bind retry,
    // audit, peer poll), so the trials sample the full phase space.
    harness.cluster().RunFor(Duration::Seconds(rng.NextDouble() * 30.0));
    Time crash_at = harness.cluster().Now();
    harness.server(1).Crash();

    // Client-library view: a call through a binding primed to the (now dead)
    // primary, fired right at the crash. The binding layer keeps
    // re-resolving with jittered backoff until the backup's binding appears.
    double limit_s = params.bind_retry_s + params.ns_audit_s +
                     params.ras_poll_s + 20.0;
    auto* table = client.Emplace<rpc::BindingTable>(client.runtime(),
                                                    nc.PathResolverFn());
    rpc::BindingOptions bopts;
    bopts.max_attempts = 1000;
    bopts.initial_backoff = Duration::Millis(500);
    bopts.backoff_multiplier = 1.5;
    bopts.max_backoff = Duration::Seconds(5);
    bopts.backoff_jitter = 0.25;
    bopts.deadline = Duration::Seconds(limit_s);
    table->Get("svc/target", bopts).Prime(primary_ref);
    bool bound_done = false;
    bool bound_ok = false;
    Time bound_at;
    {
      // Root a trace at the client call so its rebind.attempt /
      // rebind.resolve activity joins the recorded fail-over timeline.
      trace::Tracer& tracer = client.tracer();
      trace::ScopedContext scoped(&tracer, tracer.StartTrace());
      table->Bind<svc::SettopManagerProxy>("svc/target")
          .Call<void>(
              [host = client.host()](const svc::SettopManagerProxy& mgr) {
                return mgr.Heartbeat(host);
              },
              [&](Result<void> r) {
                bound_done = true;
                bound_ok = r.ok();
                bound_at = harness.cluster().Now();
              });
    }

    // Poll until the backup's binding is visible.
    bool recovered = false;
    while (harness.cluster().Now() - crash_at < Duration::Seconds(limit_s)) {
      harness.cluster().RunFor(Duration::Millis(100));
      auto f = nc.Resolve("svc/target");
      auto r = bench::WaitOn(harness.cluster(), f, Duration::Seconds(1));
      if (r.ok() && r->endpoint.host == harness.HostOf(2)) {
        recovered = true;
        break;
      }
    }
    if (!recovered) {
      ++out.failures;
      continue;
    }
    out.failover_s.Record((harness.cluster().Now() - crash_at).seconds());

    // Drain the binding-layer call (it usually finished during the polling
    // loop; its next backoff attempt lands right after the rebind).
    while (!bound_done &&
           harness.cluster().Now() - crash_at < Duration::Seconds(limit_s)) {
      harness.cluster().RunFor(Duration::Millis(500));
    }
    if (bound_done && bound_ok) {
      out.client_s.Record((bound_at - crash_at).seconds());
    }
    out.rebinds += table->total_rebinds();

    // Reconstruct the per-phase decomposition from the cluster trace buffer.
    trace::FailoverTimeline timeline = trace::FailoverTimeline::Reconstruct(
        harness.cluster().trace_buffer().Snapshot(), crash_at, "svc/target");
    if (bound_done && bound_ok) {
      timeline.client_ok_at = bound_at;
    }
    if (timeline.complete()) {
      ++out.timelines_complete;
      out.detect_s.Record(timeline.detect_delay().seconds());
      out.unbind_s.Record(timeline.unbind_delay().seconds());
      out.rebind_s.Record(timeline.rebind_delay().seconds());
      if (out.sample_report.empty()) {
        out.sample_report = timeline.Report();
      }
    }
  }
  return out;
}

// --- E1b: warm vs cold standby recovery --------------------------------------
//
// A replica whose promotion must rebuild state before it may serve: recovery
// replays kRecoveryRecords at kRecoveryRecordMs apply cost each (the MMS
// pattern — "the MMS can be reconstructed by querying each MDS", Section
// 10.1.1). The cold standby replays everything at promotion; the warm standby
// pre-applies records every 10 s while Backup, so promotion only replays the
// (empty) delta. The decomposition comes from trace::FailoverTimeline, whose
// fourth stage (bind.primary -> role.promote) is exactly the RecoverState
// component the lifecycle adds.

constexpr int kRecoveryRecords = 400;
constexpr int64_t kRecoveryRecordMs = 25;  // 400 x 25 ms = 10 s cold replay.

struct RecoveryTrialResult {
  Histogram detect_s;
  Histogram unbind_s;
  Histogram rebind_s;
  Histogram recover_s;
  Histogram total_s;  // Crash -> role.promote (backup serves as primary).
  int failures = 0;
  std::string sample_report;
};

RecoveryTrialResult RunRecoveryTrials(bool warm, int trials, uint64_t seed) {
  RecoveryTrialResult out;
  Rng rng(seed);
  for (int trial = 0; trial < trials; ++trial) {
    svc::HarnessOptions opts;
    opts.server_count = 3;
    opts.ns.audit_interval = Duration::Seconds(10);
    opts.ras.peer_poll_interval = Duration::Seconds(5);
    opts.ras.peer_failures_to_dead = 1;
    opts.ras.rpc_timeout = Duration::Seconds(1);
    opts.start_csc = false;
    svc::ClusterHarness harness(opts);
    harness.Boot();

    auto spawn_replica = [&](size_t server_index) {
      sim::Process& p = harness.SpawnProcessOn(server_index, "target");
      auto* skeleton = p.Emplace<svc::SettopManagerService>(p.executor());
      wire::ObjectRef ref = p.runtime().Export(skeleton);
      svc::ServiceLifecycle::Options lc_opts;
      lc_opts.binder.retry_interval = Duration::Seconds(10);
      lc_opts.warm_standby_interval = Duration::Seconds(10);
      auto* lifecycle = p.Emplace<svc::ServiceLifecycle>(
          p, harness.ClientFor(p), "svc/target", ref, lc_opts,
          &harness.metrics());
      // Records already applied on this replica, by a warm pass or an earlier
      // promotion; recovery replays only the remainder.
      auto applied = std::make_shared<int>(0);
      svc::ServiceLifecycle::Hooks hooks;
      hooks.ready_objects = {ref};
      hooks.recover = [&p, applied](std::function<void(Status)> done) {
        int todo = kRecoveryRecords - *applied;
        *applied = kRecoveryRecords;
        p.executor().ScheduleAfter(Duration::Millis(kRecoveryRecordMs * todo),
                                   [done] { done(OkStatus()); });
      };
      if (warm) {
        hooks.warm_standby = [&p, applied](std::function<void(Status)> done) {
          int todo = kRecoveryRecords - *applied;
          p.executor().ScheduleAfter(
              Duration::Millis(kRecoveryRecordMs * todo), [applied, done] {
                *applied = kRecoveryRecords;
                done(OkStatus());
              });
        };
      }
      lifecycle->Start(std::move(hooks));
    };

    // Primary binds and runs its own (cold) recovery before serving.
    spawn_replica(1);
    harness.cluster().RunFor(Duration::Seconds(16));
    // Backup: its first warm pass starts one interval in and replays the full
    // state, so give it time to finish before the crash window opens.
    spawn_replica(2);
    harness.cluster().RunFor(Duration::Seconds(22));

    // Crash at a pseudo-random phase of the polling clocks.
    harness.cluster().RunFor(Duration::Seconds(rng.NextDouble() * 30.0));
    Time crash_at = harness.cluster().Now();
    harness.server(1).Crash();
    harness.cluster().RunFor(Duration::Seconds(45));

    trace::FailoverTimeline timeline = trace::FailoverTimeline::Reconstruct(
        harness.cluster().trace_buffer().Snapshot(), crash_at, "svc/target");
    if (!timeline.complete() || !timeline.promoted_at.has_value()) {
      ++out.failures;
      continue;
    }
    out.detect_s.Record(timeline.detect_delay().seconds());
    out.unbind_s.Record(timeline.unbind_delay().seconds());
    out.rebind_s.Record(timeline.rebind_delay().seconds());
    out.recover_s.Record(timeline.recover_delay().seconds());
    out.total_s.Record((*timeline.promoted_at - crash_at).seconds());
    if (out.sample_report.empty()) {
      out.sample_report = timeline.Report();
    }
  }
  return out;
}

// --- E1c: sharded MMS — single-shard kill blast radius ------------------------
//
// A 4-server cluster runs the MMS as 4 shards with a lifecycle for every
// shard on every server, primaries staggered one per host. A client primes
// one binding per shard through the shard router, then the mmsd process
// hosting shard 1's primary is killed. The killed shard must answer again
// within the paper's 25 s bound (it re-binds to the promoted backup on
// another host); the other three shards must keep answering with ZERO
// rebinds — the blast radius of a shard kill is exactly one shard.

struct ShardKillResult {
  double killed_recovery_s = -1;     // Kill -> first successful routed call.
  uint64_t killed_shard_rebinds = 0;
  uint64_t other_shard_rebinds = 0;  // Summed over surviving shards.
  bool others_answered = false;      // Survivors answered during the outage.
  bool ok = false;
};

ShardKillResult RunShardKill() {
  ShardKillResult out;
  constexpr uint32_t kShards = 4;
  constexpr size_t kServers = 4;

  svc::HarnessOptions opts;
  opts.server_count = kServers;
  opts.neighborhood_count = static_cast<uint8_t>(kServers);
  // Paper defaults (Section 9.7): 10 s bind retry + 10 s NS audit + 5 s RAS
  // poll => 25 s worst case.
  opts.ns.audit_interval = Duration::Seconds(10);
  opts.ras.peer_poll_interval = Duration::Seconds(5);
  opts.ras.peer_failures_to_dead = 1;
  opts.ras.rpc_timeout = Duration::Seconds(1);
  opts.binder.retry_interval = Duration::Seconds(10);
  svc::ClusterHarness harness(opts);

  media::MediaDeployment deploy;
  deploy.movies = media::SyntheticCatalog(/*count=*/8, kServers,
                                          /*replicas=*/2);
  deploy.mms_shards = kShards;
  deploy.mms_replicas = kServers;
  media::RegisterMediaServices(harness, deploy);
  harness.Boot();
  harness.cluster().RunFor(Duration::Seconds(20));

  sim::Process& client = harness.SpawnProcessOn(0, "probe");
  naming::NameClient nc = harness.ClientFor(client);
  auto* table =
      client.Emplace<rpc::BindingTable>(client.runtime(), nc.PathResolverFn());
  auto* router = client.Emplace<rpc::ShardRouter>(*table);
  rpc::BindingOptions bopts;
  bopts.max_attempts = 200;
  bopts.initial_backoff = Duration::Millis(500);
  bopts.backoff_multiplier = 1.5;
  bopts.max_backoff = Duration::Seconds(5);
  bopts.backoff_jitter = 0.25;
  rpc::ShardedClient<media::MmsProxy> mms(
      *router, std::string(media::kMmsName), bopts);

  // One routing key per shard: the smallest integers that hash there.
  wire::ShardMap map{kShards, deploy.shard_salt};
  std::vector<uint64_t> keys(kShards, 0);
  std::vector<bool> have(kShards, false);
  for (uint64_t k = 1; !std::all_of(have.begin(), have.end(),
                                    [](bool b) { return b; });
       ++k) {
    uint32_t s = wire::ShardOf(k, map);
    if (!have[s]) {
      have[s] = true;
      keys[s] = k;
    }
  }

  auto call_shard = [&](uint32_t s) {
    Promise<uint32_t> done;
    Future<uint32_t> f = done.future();
    mms.Call<uint32_t>(
        keys[s],
        [](const media::MmsProxy& proxy) { return proxy.ListSessions(); },
        [done](Result<uint32_t> r) mutable { done.Set(std::move(r)); });
    return f;
  };

  // Prime all shard bindings, then snapshot per-binding rebind counts.
  for (uint32_t s = 0; s < kShards; ++s) {
    auto r = bench::WaitOn(harness.cluster(), call_shard(s),
                           Duration::Seconds(10));
    if (!r.ok()) {
      return out;
    }
  }
  std::vector<uint64_t> baseline(kShards, 0);
  for (uint32_t s = 0; s < kShards; ++s) {
    baseline[s] = table->Get(wire::ShardPath(media::kMmsName, s, map), bopts)
                      .rebind_count();
  }

  // Kill the mmsd hosting shard 1's primary (one process, one shard primary:
  // placement staggered them across hosts).
  auto primary = bench::WaitOn(
      harness.cluster(), nc.Resolve(wire::ShardPath(media::kMmsName, 0, map)),
      Duration::Seconds(5));
  if (!primary.ok()) {
    return out;
  }
  sim::Node* victim_node = harness.cluster().FindNode(primary->endpoint.host);
  sim::Process* victim =
      victim_node != nullptr ? victim_node->FindProcessByName("mmsd") : nullptr;
  if (victim == nullptr) {
    return out;
  }
  Time kill_at = harness.cluster().Now();
  victim_node->Kill(victim->pid());

  // While the killed shard recovers, the survivors must answer throughout.
  out.others_answered = true;
  for (uint32_t s = 1; s < kShards; ++s) {
    auto r = bench::WaitOn(harness.cluster(), call_shard(s),
                           Duration::Seconds(5));
    out.others_answered = out.others_answered && r.ok();
  }

  // Probe the killed shard until the first success.
  while (harness.cluster().Now() - kill_at < Duration::Seconds(40)) {
    auto r = bench::WaitOn(harness.cluster(), call_shard(0),
                           Duration::Seconds(5));
    if (r.ok()) {
      out.killed_recovery_s = (harness.cluster().Now() - kill_at).seconds();
      break;
    }
    harness.cluster().RunFor(Duration::Millis(500));
  }

  for (uint32_t s = 0; s < kShards; ++s) {
    uint64_t delta =
        table->Get(wire::ShardPath(media::kMmsName, s, map), bopts)
            .rebind_count() -
        baseline[s];
    if (s == 0) {
      out.killed_shard_rebinds = delta;
    } else {
      out.other_shard_rebinds += delta;
    }
  }
  out.ok = out.killed_recovery_s >= 0 && out.others_answered &&
           out.other_shard_rebinds == 0;
  return out;
}

// --- E1d: live reshard — 4 -> 8 MMS shards under a streaming population --------
//
// The E2b cluster (4 servers, 64 settops) with every settop actually
// streaming through a VodApp when the operator publishes a successor shard
// map doubling the MMS shard count. Sessions whose settop hashes to a new
// shard are drained at the source; each affected viewer sees a data gap and
// reopens through its shard router, which adopts v2 on its next map fetch.
// Measured: per-viewer disruption (publish -> next delivered chunk), the
// probe router's adoption latency, and — the invariants that make a live
// reshard safe — zero viewers lost and every session owned by the shard the
// successor map assigns it to.

struct ReshardBenchResult {
  size_t viewers = 0;
  size_t playing_before = 0;
  size_t playing_after = 0;
  size_t resumed = 0;          // Viewers that delivered a chunk post-publish.
  Histogram resume_s;          // Publish -> first chunk, per viewer.
  double adopt_s = -1;         // Publish -> probe router serves map v2.
  uint32_t adopted_version = 0;
  uint64_t handoffs = 0;       // mms.session_handoff across the cutover.
  uint64_t misplaced = 0;      // Sessions on a shard that does not own them.
  uint64_t lost = 0;           // Viewer settops with no session anywhere.
  bool ok = false;
};

ReshardBenchResult RunLiveReshard(size_t settop_count) {
  constexpr size_t kServers = 4;
  constexpr uint32_t kFromShards = 4;
  constexpr uint32_t kToShards = 8;

  svc::HarnessOptions opts;
  opts.server_count = kServers;
  opts.neighborhood_count = static_cast<uint8_t>(kServers);
  // Paper fail-over defaults; the reshard rides the same clocks.
  opts.ns.audit_interval = Duration::Seconds(10);
  opts.ras.peer_poll_interval = Duration::Seconds(5);
  opts.ras.peer_failures_to_dead = 1;
  opts.ras.rpc_timeout = Duration::Seconds(1);
  svc::ClusterHarness harness(opts);

  media::MediaDeployment deploy;
  deploy.movies = media::SyntheticCatalog(/*count=*/40, kServers,
                                          /*replicas=*/2);
  // Generous capacity: the phase under test is the cutover, not admission.
  deploy.mds_capacity_bps = 96'000'000;
  deploy.trunk_capacity_bps = 400'000'000;
  deploy.mms_shards = kFromShards;
  deploy.mms_replicas = kServers;
  media::RegisterMediaServices(harness, deploy);
  harness.Boot();
  harness.cluster().RunFor(Duration::Seconds(16));

  ReshardBenchResult out;
  out.viewers = settop_count;

  // The streaming population: one VodApp per settop, playing through the
  // shard router with the jittered-backoff posture real settops carry.
  std::vector<settop::VodApp*> vods;
  std::vector<uint32_t> viewer_hosts;
  for (size_t i = 0; i < settop_count; ++i) {
    uint8_t nb = static_cast<uint8_t>(1 + (i % kServers));
    sim::Node& settop = harness.AddSettop(nb);
    viewer_hosts.push_back(settop.host());
    sim::Process& p = settop.Spawn("viewer");
    settop::VodApp::Options vopts;
    vopts.mms_rebind.max_attempts = 50;
    vopts.mms_rebind.initial_backoff = Duration::Millis(500);
    vopts.mms_rebind.backoff_multiplier = 1.2;
    vopts.mms_rebind.backoff_jitter = 0.25;
    vopts.mms_rebind.jitter_seed = i + 1;
    vopts.mms_rebind.deadline = Duration::Seconds(30);
    auto* vod = p.Emplace<settop::VodApp>(p.runtime(), p.executor(),
                                          harness.ClientFor(p), vopts,
                                          &harness.metrics());
    vod->PlayMovie("movie-" + std::to_string(i % 40), [](Status) {});
    vods.push_back(vod);
    harness.cluster().RunFor(Duration::Millis(200));
  }
  harness.cluster().RunFor(Duration::Seconds(12));
  for (settop::VodApp* vod : vods) {
    out.playing_before += vod->playing() ? 1 : 0;
  }

  // A probe router on a separate client: its adoption latency stands in for
  // the fleet's (every router re-fetches within map_max_age of the publish).
  sim::Process& probe = harness.SpawnProcessOn(0, "probe");
  naming::NameClient probe_nc = harness.ClientFor(probe);
  auto* probe_table = probe.Emplace<rpc::BindingTable>(probe.runtime(),
                                                       probe_nc.PathResolverFn());
  auto* probe_router = probe.Emplace<rpc::ShardRouter>(*probe_table);

  uint64_t handoff_base = harness.metrics().Get("mms.session_handoff");
  std::vector<uint64_t> chunk_base;
  for (settop::VodApp* vod : vods) {
    chunk_base.push_back(vod->chunks_received());
  }

  // The operator publishes the successor map (versioned CAS).
  wire::ShardMap successor = wire::NextShardMap(
      wire::ShardMap{kFromShards, deploy.shard_salt}, kToShards);
  sim::Process& ctl = harness.SpawnProcessOn(0, "reshard-ctl");
  Time publish_at = harness.cluster().Now();
  naming::PublishShardMap(ctl.executor(), harness.ClientFor(ctl),
                          std::string(media::kMmsName), successor,
                          [](Result<wire::ShardMap>) {});

  // Step the cutover window, recording each viewer's first post-publish
  // chunk and the probe router's adoption.
  std::vector<double> resume_at(settop_count, -1.0);
  while (harness.cluster().Now() - publish_at < Duration::Seconds(40)) {
    harness.cluster().RunFor(Duration::Millis(250));
    double elapsed = (harness.cluster().Now() - publish_at).seconds();
    for (size_t i = 0; i < settop_count; ++i) {
      if (resume_at[i] < 0 && vods[i]->chunks_received() > chunk_base[i]) {
        resume_at[i] = elapsed;
      }
    }
    if (out.adopt_s < 0) {
      probe_router->ExpireMap(std::string(media::kMmsName));
      probe_router->Route(std::string(media::kMmsName), /*key=*/1,
                          [](rpc::Binding&) {});
      if (probe_router->AdoptedVersion(std::string(media::kMmsName)) ==
          successor.version) {
        out.adopt_s = elapsed;
      }
    }
  }
  out.adopted_version =
      probe_router->AdoptedVersion(std::string(media::kMmsName));
  for (size_t i = 0; i < settop_count; ++i) {
    out.playing_after += vods[i]->playing() ? 1 : 0;
    if (resume_at[i] >= 0) {
      ++out.resumed;
      out.resume_s.Record(resume_at[i]);
    }
  }
  out.handoffs = harness.metrics().Get("mms.session_handoff") - handoff_base;

  // Ownership audit under the successor map: every session must live on the
  // shard that owns its settop, and every viewer settop must hold a session
  // somewhere (the zero-lost-sessions claim).
  std::set<uint32_t> held;
  for (uint32_t shard = 0; shard < kToShards; ++shard) {
    auto ref = bench::WaitOn(
        harness.cluster(),
        probe_nc.Resolve(wire::ShardPath(media::kMmsName, shard, successor)),
        Duration::Seconds(5));
    if (!ref.ok()) {
      ++out.misplaced;  // Unresolvable primary counts against convergence.
      continue;
    }
    auto hosts = bench::WaitOn(
        harness.cluster(),
        media::MmsProxy(probe.runtime(), *ref).ListSessionHosts(),
        Duration::Seconds(5));
    if (!hosts.ok()) {
      ++out.misplaced;
      continue;
    }
    for (uint32_t host : *hosts) {
      if (wire::ShardOf(host, successor) != shard) {
        ++out.misplaced;
      }
      held.insert(host);
    }
  }
  for (uint32_t host : viewer_hosts) {
    if (held.find(host) == held.end()) {
      ++out.lost;
    }
  }

  out.ok = out.playing_before == out.viewers &&
           out.playing_after == out.viewers && out.resumed == out.viewers &&
           out.misplaced == 0 && out.lost == 0 &&
           out.adopted_version == successor.version &&
           out.resume_s.Max() < 25.0;
  return out;
}

}  // namespace
}  // namespace itv

int main() {
  using namespace itv;
  bench::PrintHeader(
      "E1: primary/backup fail-over time vs polling parameters (paper 9.7)");
  std::printf(
      "paper: max fail-over = bind-retry + ns-audit + ras-poll; defaults "
      "10+10+5 = 25 s\n\n");
  bench::PrintRow({"bind_retry_s", "ns_audit_s", "ras_poll_s", "paper_max_s",
                   "observed_p50", "observed_p99", "observed_max",
                   "client_mean", "rebinds", "trials_ok"});

  const Params settings[] = {
      {10, 10, 5},  // Paper defaults.
      {5, 5, 5},
      {2, 2, 2},
      {1, 1, 1},
      {10, 5, 5},
      {5, 10, 5},
  };
  constexpr int kTrials = 40;
  std::vector<TrialResult> results;
  bench::ReportSection report("bench_failover");
  for (const Params& p : settings) {
    TrialResult r = RunTrials(p, kTrials, /*seed=*/42);
    double paper_max = p.bind_retry_s + p.ns_audit_s + p.ras_poll_s;
    std::string prefix = bench::Fmt("%.0f", p.bind_retry_s) + "_" +
                         bench::Fmt("%.0f", p.ns_audit_s) + "_" +
                         bench::Fmt("%.0f", p.ras_poll_s) + "_";
    report.Set(prefix + "p50_s", r.failover_s.Percentile(50));
    report.Set(prefix + "p99_s", r.failover_s.Percentile(99));
    report.Set(prefix + "max_s", r.failover_s.Max());
    report.Set(prefix + "client_mean_s", r.client_s.Mean());
    bench::PrintRow({bench::Fmt("%.0f", p.bind_retry_s),
                     bench::Fmt("%.0f", p.ns_audit_s),
                     bench::Fmt("%.0f", p.ras_poll_s),
                     bench::Fmt("%.0f", paper_max),
                     bench::Fmt("%.1f", r.failover_s.Percentile(50)),
                     bench::Fmt("%.1f", r.failover_s.Percentile(99)),
                     bench::Fmt("%.1f", r.failover_s.Max()),
                     bench::Fmt("%.1f", r.client_s.Mean()),
                     bench::FmtInt(r.rebinds),
                     bench::FmtInt(static_cast<uint64_t>(r.failover_s.count()))});
    results.push_back(std::move(r));
  }

  // Per-phase decomposition of the same trials, reconstructed by
  // trace::FailoverTimeline from the recorded spans (kill -> ras.peer_dead ->
  // ns.audit.unbind -> bind.primary).
  std::printf("\nper-phase decomposition via trace::FailoverTimeline "
              "(seconds, mean/max over complete timelines):\n\n");
  bench::PrintRow({"bind_retry_s", "ns_audit_s", "ras_poll_s", "detect_mean",
                   "detect_max", "unbind_mean", "unbind_max", "rebind_mean",
                   "rebind_max", "timelines"});
  for (size_t i = 0; i < results.size(); ++i) {
    const Params& p = settings[i];
    const TrialResult& r = results[i];
    bench::PrintRow({bench::Fmt("%.0f", p.bind_retry_s),
                     bench::Fmt("%.0f", p.ns_audit_s),
                     bench::Fmt("%.0f", p.ras_poll_s),
                     bench::Fmt("%.1f", r.detect_s.Mean()),
                     bench::Fmt("%.1f", r.detect_s.Max()),
                     bench::Fmt("%.1f", r.unbind_s.Mean()),
                     bench::Fmt("%.1f", r.unbind_s.Max()),
                     bench::Fmt("%.1f", r.rebind_s.Mean()),
                     bench::Fmt("%.1f", r.rebind_s.Max()),
                     bench::FmtInt(static_cast<uint64_t>(r.timelines_complete))});
  }
  if (!results.empty() && !results[0].sample_report.empty()) {
    std::printf("\nsample timeline (paper defaults, one trial):\n%s",
                results[0].sample_report.c_str());
  }
  std::printf(
      "\nnote: observed max can exceed the paper's sum by the RAS RPC "
      "timeout (1 s here)\nthat detects the dead peer, which the paper's "
      "arithmetic folds into its poll interval.\nclient_mean is the same "
      "fail-over seen through the binding layer (a call primed to the\ndead "
      "primary, retried with jittered backoff); rebinds counts its "
      "name-service lookups.\n");

  bench::PrintHeader(
      "E1b: warm vs cold standby recovery (ServiceLifecycle, paper defaults)");
  std::printf(
      "promotion must replay %d records at %lld ms each (%.0f s cold); the "
      "warm standby\npre-applies them every 10 s while Backup. total = crash "
      "-> role.promote, decomposed\nby trace::FailoverTimeline into detect / "
      "audit-unbind / rebind / state-recovery:\n\n",
      kRecoveryRecords, static_cast<long long>(kRecoveryRecordMs),
      kRecoveryRecords * kRecoveryRecordMs / 1000.0);
  bench::PrintRow({"standby", "detect_mean", "unbind_mean", "rebind_mean",
                   "recover_mean", "recover_max", "total_p50", "total_max",
                   "paper_bound_s", "trials_ok"});
  constexpr int kRecoveryTrials = 12;
  for (bool warm : {false, true}) {
    RecoveryTrialResult r = RunRecoveryTrials(warm, kRecoveryTrials,
                                              /*seed=*/7);
    const char* label = warm ? "warm" : "cold";
    bench::PrintRow(
        {label, bench::Fmt("%.1f", r.detect_s.Mean()),
         bench::Fmt("%.1f", r.unbind_s.Mean()),
         bench::Fmt("%.1f", r.rebind_s.Mean()),
         bench::Fmt("%.1f", r.recover_s.Mean()),
         bench::Fmt("%.1f", r.recover_s.Max()),
         bench::Fmt("%.1f", r.total_s.Percentile(50)),
         bench::Fmt("%.1f", r.total_s.Max()), bench::Fmt("%.0f", 25.0),
         bench::FmtInt(static_cast<uint64_t>(r.total_s.count()))});
    std::string prefix = warm ? "warm_" : "cold_";
    report.Set(prefix + "recover_mean_s", r.recover_s.Mean());
    report.Set(prefix + "total_max_s", r.total_s.Max());
    if (warm && !r.sample_report.empty()) {
      std::printf("\nsample warm-standby timeline (one trial):\n%s",
                  r.sample_report.c_str());
    }
  }
  std::printf(
      "\nexpect: the warm standby's recovery component is ~0, keeping the "
      "whole 25 s bound as\nheadroom; the cold standby pays the full replay "
      "on top of re-binding, so a worst-case\nphase alignment (bind + audit "
      "+ poll near their maxima) plus the replay overruns the\nbound. The "
      "paper's arithmetic only covers re-binding — keeping it honest for "
      "stateful\nservices is exactly what the warm_standby hook is for.\n");

  bench::PrintHeader(
      "E1c: sharded MMS — single-shard kill blast radius (paper defaults)");
  std::printf(
      "4 servers x 4 MMS shards, primaries staggered one per host; the mmsd "
      "hosting\nshard 1's primary is killed. The killed shard must answer "
      "again within the 25 s\nbound; the other shards must keep answering "
      "with zero rebinds.\n\n");
  bench::PrintRow({"killed_rec_s", "paper_bound_s", "killed_rebinds",
                   "other_rebinds", "others_up", "verdict"});
  ShardKillResult sk = RunShardKill();
  bench::PrintRow({bench::Fmt("%.1f", sk.killed_recovery_s),
                   bench::Fmt("%.0f", 25.0),
                   bench::FmtInt(sk.killed_shard_rebinds),
                   bench::FmtInt(sk.other_shard_rebinds),
                   sk.others_answered ? "yes" : "no",
                   sk.ok ? "pass" : "FAIL"});
  report.Set("shard_kill_recovery_s", sk.killed_recovery_s);
  report.SetInt("shard_kill_killed_rebinds", sk.killed_shard_rebinds);
  report.SetInt("shard_kill_other_rebinds", sk.other_shard_rebinds);
  report.SetText("shard_kill_verdict", sk.ok ? "pass" : "fail");
  std::printf(
      "\nexpect: killed_rec_s <= 25 (usually far less: detect + audit + "
      "rebind), other_rebinds\n= 0 — per-shard bindings give a shard kill a "
      "one-shard blast radius.\n");

  bench::PrintHeader(
      "E1d: live reshard — 4 -> 8 MMS shards under a streaming population");
  std::printf(
      "4 servers, 64 streaming settops; the successor map doubling the shard "
      "count is\npublished live (versioned CAS). resume = publish -> next "
      "chunk per viewer; moved\nsessions pay a drain + reopen, unmoved ones "
      "stream through. Zero sessions may be\nlost and every session must "
      "land on the shard owning it under map v2.\n\n");
  bench::PrintRow({"viewers", "resume_p50_s", "resume_p99_s", "resume_max_s",
                   "adopt_s", "handoffs", "misplaced", "lost", "router_v",
                   "verdict"});
  ReshardBenchResult rs = RunLiveReshard(/*settop_count=*/64);
  bench::PrintRow({bench::FmtInt(rs.viewers),
                   bench::Fmt("%.1f", rs.resume_s.Percentile(50)),
                   bench::Fmt("%.1f", rs.resume_s.Percentile(99)),
                   bench::Fmt("%.1f", rs.resume_s.Max()),
                   bench::Fmt("%.1f", rs.adopt_s),
                   bench::FmtInt(rs.handoffs), bench::FmtInt(rs.misplaced),
                   bench::FmtInt(rs.lost), bench::FmtInt(rs.adopted_version),
                   rs.ok ? "pass" : "FAIL"});
  report.Set("reshard_resume_p50_s", rs.resume_s.Percentile(50));
  report.Set("reshard_resume_max_s", rs.resume_s.Max());
  report.Set("reshard_adopt_s", rs.adopt_s);
  report.SetInt("reshard_handoffs", rs.handoffs);
  report.SetInt("reshard_sessions_misplaced", rs.misplaced);
  report.SetInt("reshard_sessions_lost", rs.lost);
  report.SetInt("reshard_adopted_version", rs.adopted_version);
  report.SetText("reshard_verdict", rs.ok ? "pass" : "fail");
  std::printf(
      "\nexpect: resume_max < 25 s (a moved session pays one 2 s gap "
      "timeout plus a routed\nreopen; the paper's fail-over bound is the "
      "ceiling, not the norm), misplaced = lost\n= 0, router_v = 2 — the "
      "cutover moves sessions without losing any.\n");

  report.WriteMerged();
  return 0;
}
