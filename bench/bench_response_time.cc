// Experiment E3 — Response time (paper Section 9.3).
//
// "Our goal was to respond to user requests within 0.5 seconds. The slowest
//  operation is tuning to a new digital channel that presents a rich
//  experience with movies, fonts, and images. In our system, various
//  constraints (notably a download bandwidth of 1 MByte per second) lead to
//  a start-up time of 2-4 seconds for such applications. However... our
//  applications are able to display cover within 0.5 seconds."
//
// Harness: a settop changes channels; the AM downloads a small cover still
// first, then the application binary through the RDS, with the Connection
// Manager capping the settop's downstream. Sweep app size and downstream
// rate; report cover latency and full start-up latency.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/media/factories.h"
#include "src/settop/app_manager.h"
#include "src/svc/harness.h"

namespace itv {
namespace {

struct Sample {
  double cover_s = -1;
  double start_s = -1;
};

Sample MeasureStartup(int64_t app_bytes, int64_t downstream_bps,
                      int64_t rds_cap_bps) {
  svc::HarnessOptions opts;
  opts.server_count = 2;
  svc::ClusterHarness harness(opts);

  media::MediaDeployment deploy;
  deploy.rds_items = {
      {"app", app_bytes},
      {"app.cover", 50'000},  // A small still image.
      {"navigator", 1'000'000},
  };
  deploy.rds_max_transfer_bps = rds_cap_bps;
  media::RegisterMediaServices(harness, deploy);
  harness.Boot();
  harness.cluster().RunFor(Duration::Seconds(10));

  sim::Node& settop = harness.AddSettop(1);
  sim::Process& p = settop.Spawn("am");
  settop::AppManager::Options am_opts;
  am_opts.boot_server_host = harness.ServerHostForNeighborhood(1);
  am_opts.cover_item = "app.cover";
  auto* am = p.Emplace<settop::AppManager>(p.runtime(), p.executor(), am_opts,
                                           &harness.metrics());
  bool booted = false;
  am->Boot([&](Status s) { booted = s.ok(); });
  harness.cluster().RunFor(Duration::Seconds(8));
  if (!booted) {
    return {};
  }

  // Narrow the settop's downstream by pre-allocating the difference, as if
  // other traffic held it (the deployment constant is 6 Mb/s).
  // Instead of a knob, we emulate rate limits via the RDS transfer cap.
  Status done_status = InternalError("pending");
  bool done = false;
  am->StartApp("app", [&](Status s) {
    done_status = s;
    done = true;
  });
  harness.cluster().RunFor(Duration::Seconds(60));
  if (!done || !done_status.ok()) {
    return {};
  }
  Sample sample;
  sample.cover_s = am->last_cover_latency().seconds();
  sample.start_s = am->last_app_start_latency().seconds();
  (void)downstream_bps;
  return sample;
}

}  // namespace
}  // namespace itv

int main() {
  using namespace itv;
  bench::PrintHeader(
      "E3: channel-change response time — cover vs full app start (paper 9.3)");
  std::printf(
      "paper: cover < 0.5 s; rich app start-up 2-4 s at ~1 MByte/s; settop "
      "downstream cap 6 Mb/s\n\n");
  bench::PrintRow({"app_MB", "link_Mbps", "cover_s", "start_s", "paper_band"});

  struct Case {
    int64_t app_bytes;
    int64_t rds_cap_bps;
    const char* band;
  };
  const Case cases[] = {
      {1'000'000, 8'000'000, "under 2s (small)"},
      {2'000'000, 8'000'000, "2-4s"},
      {3'000'000, 8'000'000, "2-4s"},
      {2'000'000, 4'000'000, "4s+ (slow link)"},
      {2'000'000, 2'000'000, "8s  (slow link)"},
      {8'000'000, 8'000'000, "10s+ (huge app)"},
  };
  for (const Case& c : cases) {
    Sample s = MeasureStartup(c.app_bytes, media::kSettopDownstreamBps,
                              c.rds_cap_bps);
    bench::PrintRow(
        {bench::Fmt("%.0f", static_cast<double>(c.app_bytes) / 1e6),
         bench::Fmt("%.0f", static_cast<double>(c.rds_cap_bps) / 1e6),
         bench::Fmt("%.3f", s.cover_s), bench::Fmt("%.2f", s.start_s),
         c.band});
  }
  std::printf(
      "\nexpect: cover stays well under the 0.5 s budget at every size (it "
      "is a 50 KB still),\nwhile full start-up scales with size/bandwidth — "
      "2-4 s for the 2-3 MB 'rich' apps at\nthe trial's ~1 MByte/s, exactly "
      "the paper's band. Effective rate = min(link, settop 6 Mb/s).\n");
  return 0;
}
