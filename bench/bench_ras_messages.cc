// Experiment E5 — RAS network message cost (paper Section 7.2.1).
//
// "In our RAS implementation, very few network messages are required.
//  Services contact the RAS on their local machine, and each RAS instance
//  registers a callback with the SSC on its local machine. The only network
//  messages exchanged are between the RAS instances. Currently, each RAS
//  instance polls the others every five seconds. The time between polls...
//  could be increased to reduce the number of messages... polling intervals
//  cannot grow too high without adversely impacting fail-over speed."
//
// Harness: S servers, each RAS tracking one remote object on every other
// server (the name service audit naturally creates this pattern). We count
// RAS peer-poll RPCs per second for a sweep of S and the poll interval, and
// report the fail-over-speed term the interval contributes.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/ras/types.h"
#include "src/svc/harness.h"
#include "src/svc/ssc.h"

namespace itv {
namespace {

struct Measurement {
  double ras_msgs_per_s = 0;
  double total_msgs_per_s = 0;
};

Measurement Measure(size_t servers, double poll_interval_s) {
  svc::HarnessOptions opts;
  opts.server_count = servers;
  opts.ras.peer_poll_interval = Duration::Seconds(poll_interval_s);
  opts.start_csc = false;
  svc::ClusterHarness harness(opts);
  harness.Boot();

  // One "beacon" service object per server, registered with its SSC so the
  // local RAS knows it is alive.
  class BeaconSkeleton : public rpc::Skeleton {
   public:
    std::string_view interface_name() const override { return "itv.Beacon"; }
    void Dispatch(uint32_t, const wire::Bytes&, const rpc::CallContext&,
                  rpc::ReplyFn reply) override {
      rpc::ReplyOk(reply);
    }
  };
  std::vector<wire::ObjectRef> beacons;
  for (size_t i = 0; i < servers; ++i) {
    sim::Process& p = harness.SpawnProcessOn(i, "beacon");
    auto* skeleton = p.Emplace<BeaconSkeleton>();
    wire::ObjectRef ref = p.runtime().Export(skeleton);
    svc::SscProxy ssc(p.runtime(), svc::SscRefAt(p.host()));
    ssc.NotifyReady(p.pid(), {ref}).OnReady([](const Result<void>&) {});
    beacons.push_back(ref);
  }
  harness.cluster().RunFor(Duration::Seconds(1));

  // Make every server's RAS track every other server's beacon.
  for (size_t i = 0; i < servers; ++i) {
    sim::Process& p = harness.SpawnProcessOn(i, "tracker");
    std::vector<ras::EntityId> remote;
    for (size_t j = 0; j < servers; ++j) {
      if (j == i) {
        continue;
      }
      remote.push_back(ras::EntityId::Object(beacons[j]));
    }
    ras::RasProxy local(p.runtime(), ras::RasRefAt(p.host()));
    local.CheckStatus(remote).OnReady([](const Result<std::vector<uint8_t>>&) {});
  }
  harness.cluster().RunFor(Duration::Seconds(10));  // Warm-up.

  uint64_t peer_before = harness.metrics().Get("ras.peer_poll");
  uint64_t total_before = harness.metrics().Get("net.msg.total");
  constexpr double kWindowS = 120.0;
  harness.cluster().RunFor(Duration::Seconds(kWindowS));
  Measurement m;
  // Each peer poll is one request + one reply on the wire.
  m.ras_msgs_per_s =
      static_cast<double>(harness.metrics().Get("ras.peer_poll") - peer_before) *
      2.0 / kWindowS;
  m.total_msgs_per_s =
      static_cast<double>(harness.metrics().Get("net.msg.total") - total_before) /
      kWindowS;
  return m;
}

}  // namespace
}  // namespace itv

int main() {
  using namespace itv;
  bench::PrintHeader("E5: RAS auditing message cost (paper 7.2.1)");
  std::printf(
      "model: S RAS instances, each polling every peer it tracks objects on "
      "=> ~S*(S-1)/interval polls/s\n(x2 for request+reply). The interval "
      "also adds directly to worst-case fail-over (E1).\n\n");
  bench::PrintRow({"servers", "interval_s", "expected/s", "ras_msgs/s",
                   "cluster_msgs/s", "failover_term_s"});
  for (size_t servers : {2, 4, 8, 16}) {
    for (double interval : {1.0, 5.0, 10.0}) {
      Measurement m = Measure(servers, interval);
      double expected =
          static_cast<double>(servers * (servers - 1)) / interval * 2.0;
      bench::PrintRow({bench::FmtInt(servers), bench::Fmt("%.0f", interval),
                       bench::Fmt("%.1f", expected),
                       bench::Fmt("%.1f", m.ras_msgs_per_s),
                       bench::Fmt("%.1f", m.total_msgs_per_s),
                       bench::Fmt("%.0f", interval)});
    }
  }
  std::printf(
      "\nexpect: measured ras_msgs/s tracks S*(S-1)/interval*2 — quadratic "
      "in servers,\ninverse in the interval; 'a small number of messages' at "
      "the trial's scale (3 servers,\n5 s => ~2.4 msgs/s). cluster_msgs/s "
      "adds NS heartbeats and other background traffic.\n");
  return 0;
}
