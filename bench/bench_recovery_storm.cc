// Experiment E7 — Recovery storms (paper Section 8.2).
//
// "The disadvantage is that it presents the possibility of recovery storms.
//  If a popular service crashes, many clients may invoke the name service at
//  once to ask for a new object. Because the resolve operation is quite
//  fast, we do not expect this to be a problem. If performance difficulties
//  arise, we can modify the library routine to back off when repeating
//  requests for a new service object."
//
// Harness: N clients hold cached references (via the Rebinder library) to a
// popular service; the service restarts with a new incarnation; every client
// then calls at the same instant. All calls fail with UNAVAILABLE and
// re-resolve simultaneously. We measure the storm's size at the name
// service, the recovery-latency distribution, and the time until every
// client has recovered.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/naming/name_client.h"
#include "src/svc/harness.h"
#include "src/svc/settop_manager.h"

namespace itv {
namespace {

struct StormResult {
  size_t clients;
  size_t recovered;
  double p50_ms;
  double p99_ms;
  double all_recovered_s;
  uint64_t resolves;
};

StormResult RunStorm(size_t clients) {
  svc::HarnessOptions opts;
  opts.server_count = 2;
  opts.start_csc = false;
  svc::ClusterHarness harness(opts);
  harness.Boot();
  sim::Cluster& cluster = harness.cluster();

  // The popular service on server 2 (SettopManagerService doubles as a
  // generic pingable servant).
  auto spawn_service = [&]() -> wire::ObjectRef {
    sim::Process& p = harness.SpawnProcessOn(1, "popular");
    auto* skeleton = p.Emplace<svc::SettopManagerService>(p.executor());
    wire::ObjectRef ref = p.runtime().Export(skeleton);
    svc::SscProxy ssc(p.runtime(), svc::SscRefAt(p.host()));
    ssc.NotifyReady(p.pid(), {ref}).OnReady([](const Result<void>&) {});
    return ref;
  };
  wire::ObjectRef ref_v1 = spawn_service();
  sim::Process& setup = harness.SpawnProcessOn(0, "setup");
  (void)bench::WaitOn(cluster, harness.ClientFor(setup).Bind("svc/popular", ref_v1));

  // N clients, each with a Rebinder primed to the current reference.
  struct Client {
    sim::Process* process;
    rpc::Rebinder* rebinder;
    bool recovered = false;
    Time recovered_at;
  };
  std::vector<Client> all;
  all.reserve(clients);
  for (size_t i = 0; i < clients; ++i) {
    sim::Node& settop = harness.AddSettop(static_cast<uint8_t>(1 + (i % 2)));
    sim::Process& p = settop.Spawn("client");
    rpc::Rebinder::Options rb_opts;
    rb_opts.max_attempts = 6;
    rb_opts.initial_backoff = Duration::Millis(100);
    auto* rebinder = p.Emplace<rpc::Rebinder>(
        p.executor(), harness.ClientFor(p).ResolveFnFor("svc/popular"), rb_opts);
    rebinder->Prime(ref_v1);
    all.push_back(Client{&p, rebinder, false, Time()});
  }

  // Kill + restart the service; rebind the new incarnation.
  harness.server(1).Kill(harness.server(1).FindProcessByName("popular")->pid());
  cluster.RunFor(Duration::Millis(200));
  wire::ObjectRef ref_v2 = spawn_service();
  (void)bench::WaitOn(cluster, harness.ClientFor(setup).Unbind("svc/popular"));
  (void)bench::WaitOn(cluster, harness.ClientFor(setup).Bind("svc/popular", ref_v2));

  uint64_t resolves_before = harness.metrics().Get("ns.resolve");

  // The storm: every client calls at the same virtual instant.
  Time storm_start = cluster.Now();
  for (Client& c : all) {
    sim::Process* p = c.process;
    Client* self = &c;
    sim::Cluster* cl = &cluster;
    c.rebinder->Call<void>(
        [p](const wire::ObjectRef& target) {
          return svc::SettopManagerProxy(p->runtime(), target)
              .Heartbeat(p->host());
        },
        [self, cl](Result<void> r) {
          if (r.ok()) {
            self->recovered = true;
            self->recovered_at = cl->Now();
          }
        });
  }
  cluster.RunFor(Duration::Seconds(30));

  StormResult result{};
  result.clients = clients;
  Histogram latency_ms;
  Time last;
  for (const Client& c : all) {
    if (!c.recovered) {
      continue;
    }
    ++result.recovered;
    latency_ms.Record((c.recovered_at - storm_start).seconds() * 1000.0);
    if (c.recovered_at > last) {
      last = c.recovered_at;
    }
  }
  result.p50_ms = latency_ms.Percentile(50);
  result.p99_ms = latency_ms.Percentile(99);
  result.all_recovered_s = (last - storm_start).seconds();
  result.resolves = harness.metrics().Get("ns.resolve") - resolves_before;
  return result;
}

}  // namespace
}  // namespace itv

int main() {
  using namespace itv;
  bench::PrintHeader(
      "E7: recovery storm after a popular service crashes (paper 8.2)");
  std::printf(
      "N clients with cached refs call simultaneously after a restart; each "
      "gets UNAVAILABLE,\nre-resolves (100 ms backoff), retries.\n\n");
  bench::PrintRow({"clients", "recovered", "p50_ms", "p99_ms", "all_done_s",
                   "resolves"});
  for (size_t clients : {100, 500, 1000, 4000}) {
    StormResult r = RunStorm(clients);
    bench::PrintRow({bench::FmtInt(r.clients), bench::FmtInt(r.recovered),
                     bench::Fmt("%.1f", r.p50_ms), bench::Fmt("%.1f", r.p99_ms),
                     bench::Fmt("%.2f", r.all_recovered_s),
                     bench::FmtInt(r.resolves)});
  }
  std::printf(
      "\nexpect: every client recovers, ~1 resolve per client, and the whole "
      "storm drains in\nwell under a second of cluster time — 'the resolve "
      "operation is quite fast', so storms\nare absorbed without the backoff "
      "escalation the paper holds in reserve.\n");
  return 0;
}
