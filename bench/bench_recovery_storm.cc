// Experiment E7 — Recovery storms (paper Section 8.2).
//
// "The disadvantage is that it presents the possibility of recovery storms.
//  If a popular service crashes, many clients may invoke the name service at
//  once to ask for a new object. Because the resolve operation is quite
//  fast, we do not expect this to be a problem. If performance difficulties
//  arise, we can modify the library routine to back off when repeating
//  requests for a new service object."
//
// Harness: N client processes hold cached references (via the BindingTable
// client layer) to a popular service; the service restarts with a new
// incarnation; every client then fires `kCallsPerClient` concurrent calls
// at the same instant. All calls fail with UNAVAILABLE and want to
// re-resolve simultaneously. We measure the storm's size at the name
// service, the recovery-latency distribution, the time until every client
// has recovered — and how the layer's single-flight coalescing keeps
// resolves at O(processes) instead of O(in-flight calls), which the
// rebind.count / rebind.coalesced metrics make visible.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/naming/name_client.h"
#include "src/rpc/binding_table.h"
#include "src/svc/harness.h"
#include "src/svc/settop_manager.h"

namespace itv {
namespace {

constexpr int kCallsPerClient = 4;

struct StormResult {
  size_t clients;
  size_t recovered;  // Calls that completed OK (clients * kCallsPerClient).
  double p50_ms;
  double p99_ms;
  double all_recovered_s;
  uint64_t resolves;   // ns.resolve at the name service during the storm.
  uint64_t rebinds;    // rebind.count: lookups the binding layer issued.
  uint64_t coalesced;  // rebind.coalesced: calls that piggybacked.
};

StormResult RunStorm(size_t clients) {
  svc::HarnessOptions opts;
  opts.server_count = 2;
  opts.start_csc = false;
  svc::ClusterHarness harness(opts);
  harness.Boot();
  sim::Cluster& cluster = harness.cluster();

  // The popular service on server 2 (SettopManagerService doubles as a
  // generic pingable servant).
  auto spawn_service = [&]() -> wire::ObjectRef {
    sim::Process& p = harness.SpawnProcessOn(1, "popular");
    auto* skeleton = p.Emplace<svc::SettopManagerService>(p.executor());
    wire::ObjectRef ref = p.runtime().Export(skeleton);
    svc::SscProxy ssc(p.runtime(), svc::SscRefAt(p.host()));
    ssc.NotifyReady(p.pid(), {ref}).OnReady([](const Result<void>&) {});
    return ref;
  };
  wire::ObjectRef ref_v1 = spawn_service();
  sim::Process& setup = harness.SpawnProcessOn(0, "setup");
  (void)bench::WaitOn(cluster, harness.ClientFor(setup).Bind("svc/popular", ref_v1));

  // N clients, each with a BindingTable whose "svc/popular" binding is
  // primed to the current reference — the steady-state posture of a settop
  // fleet before the crash.
  struct Client {
    sim::Process* process;
    rpc::BindingTable* table;
    int recovered = 0;
    Time recovered_at;
  };
  std::vector<Client> all;
  all.reserve(clients);
  for (size_t i = 0; i < clients; ++i) {
    sim::Node& settop = harness.AddSettop(static_cast<uint8_t>(1 + (i % 2)));
    sim::Process& p = settop.Spawn("client");
    rpc::BindingOptions rb_opts;
    rb_opts.max_attempts = 6;
    rb_opts.initial_backoff = Duration::Millis(100);
    rb_opts.backoff_jitter = 0.25;
    auto* table = p.Emplace<rpc::BindingTable>(
        p.runtime(), harness.ClientFor(p).PathResolverFn());
    table->Get("svc/popular", rb_opts).Prime(ref_v1);
    all.push_back(Client{&p, table, 0, Time()});
  }

  // Kill + restart the service; rebind the new incarnation.
  harness.server(1).Kill(harness.server(1).FindProcessByName("popular")->pid());
  cluster.RunFor(Duration::Millis(200));
  wire::ObjectRef ref_v2 = spawn_service();
  (void)bench::WaitOn(cluster, harness.ClientFor(setup).Unbind("svc/popular"));
  (void)bench::WaitOn(cluster, harness.ClientFor(setup).Bind("svc/popular", ref_v2));

  uint64_t resolves_before = harness.metrics().Get("ns.resolve");
  uint64_t rebinds_before = harness.metrics().Get("rebind.count");
  uint64_t coalesced_before = harness.metrics().Get("rebind.coalesced");

  // The storm: every client fires all its calls at the same virtual instant.
  Time storm_start = cluster.Now();
  for (Client& c : all) {
    auto mgr = c.table->Bind<svc::SettopManagerProxy>("svc/popular");
    for (int call = 0; call < kCallsPerClient; ++call) {
      sim::Process* p = c.process;
      Client* self = &c;
      sim::Cluster* cl = &cluster;
      mgr.Call<void>(
          [p](const svc::SettopManagerProxy& proxy) {
            return proxy.Heartbeat(p->host());
          },
          [self, cl](Result<void> r) {
            if (r.ok()) {
              ++self->recovered;
              self->recovered_at = cl->Now();
            }
          });
    }
  }
  cluster.RunFor(Duration::Seconds(30));

  StormResult result{};
  result.clients = clients;
  Histogram latency_ms;
  Time last;
  for (const Client& c : all) {
    result.recovered += c.recovered;
    if (c.recovered == 0) {
      continue;
    }
    latency_ms.Record((c.recovered_at - storm_start).seconds() * 1000.0);
    if (c.recovered_at > last) {
      last = c.recovered_at;
    }
  }
  result.p50_ms = latency_ms.Percentile(50);
  result.p99_ms = latency_ms.Percentile(99);
  result.all_recovered_s = (last - storm_start).seconds();
  result.resolves = harness.metrics().Get("ns.resolve") - resolves_before;
  result.rebinds = harness.metrics().Get("rebind.count") - rebinds_before;
  result.coalesced = harness.metrics().Get("rebind.coalesced") - coalesced_before;
  return result;
}

}  // namespace
}  // namespace itv

int main() {
  using namespace itv;
  bench::PrintHeader(
      "E7: recovery storm after a popular service crashes (paper 8.2)");
  std::printf(
      "N clients with primed bindings each fire %d concurrent calls after a "
      "restart; every call\ngets UNAVAILABLE. Single-flight folds each "
      "process's re-resolves into one jittered lookup,\nso 'resolves' tracks "
      "clients, not calls (= clients x %d).\n\n",
      kCallsPerClient, kCallsPerClient);
  bench::PrintRow({"clients", "calls_ok", "p50_ms", "p99_ms", "all_done_s",
                   "resolves", "rebinds", "coalesced"});
  for (size_t clients : {100, 500, 1000, 4000}) {
    StormResult r = RunStorm(clients);
    bench::PrintRow({bench::FmtInt(r.clients), bench::FmtInt(r.recovered),
                     bench::Fmt("%.1f", r.p50_ms), bench::Fmt("%.1f", r.p99_ms),
                     bench::Fmt("%.2f", r.all_recovered_s),
                     bench::FmtInt(r.resolves), bench::FmtInt(r.rebinds),
                     bench::FmtInt(r.coalesced)});
  }
  std::printf(
      "\nexpect: every call recovers with ~1 resolve per CLIENT (coalesced "
      "covers the rest),\nand the storm drains in well under a second of "
      "cluster time — the backoff escalation\nthe paper holds in reserve, "
      "plus the coalescing it hints at, built into the library.\n");
  return 0;
}
