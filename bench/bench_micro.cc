// Experiment E8 — micro-costs of the OCS primitives (google-benchmark).
//
// The paper's development-velocity and response-time stories rest on the
// primitives being cheap: marshalling, dispatch, signing, selector
// evaluation, and name resolution. These microbenchmarks put real numbers
// on each layer of the stack as built here.

#include <benchmark/benchmark.h>

#include "bench/bench_report.h"
#include "src/auth/auth_service.h"
#include "src/auth/chacha20.h"
#include "src/auth/hmac.h"
#include "src/auth/sha256.h"
#include "src/naming/context_tree.h"
#include "src/naming/selector.h"
#include "src/rpc/stub_helpers.h"
#include "src/sim/cluster.h"

namespace itv {
namespace {

// --- Wire layer ---------------------------------------------------------------

void BM_EncodeMessage(benchmark::State& state) {
  wire::Message msg;
  msg.kind = wire::MsgKind::kRequest;
  msg.call_id = 42;
  msg.object_id = 1;
  msg.method_id = 3;
  msg.auth.principal = "settop/11.1.0.1";
  msg.payload.assign(static_cast<size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::EncodeMessage(msg));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeMessage)->Arg(64)->Arg(1024)->Arg(65536);

void BM_DecodeMessage(benchmark::State& state) {
  wire::Message msg;
  msg.payload.assign(static_cast<size_t>(state.range(0)), 0xab);
  wire::Bytes encoded = wire::EncodeMessage(msg);
  for (auto _ : state) {
    wire::Message out;
    benchmark::DoNotOptimize(wire::DecodeMessage(encoded, &out));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeMessage)->Arg(64)->Arg(1024)->Arg(65536);

// Consuming overload: the payload is moved out of the frame buffer instead of
// copied. The copy back into `encoded` each iteration is part of the setup
// cost, so the delta vs BM_DecodeMessage understates the win at large sizes.
void BM_DecodeMessageMove(benchmark::State& state) {
  wire::Message msg;
  msg.payload.assign(static_cast<size_t>(state.range(0)), 0xab);
  wire::Bytes encoded = wire::EncodeMessage(msg);
  wire::Bytes frame;
  for (auto _ : state) {
    frame = encoded;
    wire::Message out;
    benchmark::DoNotOptimize(wire::DecodeMessage(std::move(frame), &out));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeMessageMove)->Arg(64)->Arg(1024)->Arg(65536);

// Append-into-existing-buffer encode, as the TCP transport frames messages.
void BM_EncodeMessageTo(benchmark::State& state) {
  wire::Message msg;
  msg.kind = wire::MsgKind::kRequest;
  msg.call_id = 42;
  msg.auth.principal = "settop/11.1.0.1";
  msg.payload.assign(static_cast<size_t>(state.range(0)), 0xab);
  wire::Bytes buffer;
  for (auto _ : state) {
    wire::Writer w(std::move(buffer));
    wire::EncodeMessageTo(msg, w);
    buffer = w.TakeBytes();
    benchmark::DoNotOptimize(buffer.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeMessageTo)->Arg(64)->Arg(1024)->Arg(65536);

void BM_EncodeArgs(benchmark::State& state) {
  std::string title = "T2";
  uint32_t host = 0x0b010001;
  wire::ObjectRef sink;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpc::EncodeArgs(title, host, sink));
  }
}
BENCHMARK(BM_EncodeArgs);

// --- Crypto -----------------------------------------------------------------

void BM_Sha256(benchmark::State& state) {
  wire::Bytes data(static_cast<size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(auth::Sha256Of(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSignCall(benchmark::State& state) {
  auth::Key key = auth::KeyFromString("bench");
  wire::Message msg;
  msg.payload.assign(512, 0x77);
  for (auto _ : state) {
    benchmark::DoNotOptimize(auth::HmacSha256(key, msg.SignedPortion()));
  }
}
BENCHMARK(BM_HmacSignCall);

// Streaming sign-over-spans: no SignedPortion() temporary, as the auth
// policy now signs every call.
void BM_HmacSignCallStream(benchmark::State& state) {
  auth::Key key = auth::KeyFromString("bench");
  wire::Message msg;
  msg.payload.assign(512, 0x77);
  for (auto _ : state) {
    auth::HmacSha256Stream hmac(key);
    msg.ForEachSignedSpan(
        [&hmac](const void* data, size_t n) { hmac.Update(data, n); });
    benchmark::DoNotOptimize(hmac.Finish());
  }
}
BENCHMARK(BM_HmacSignCallStream);

void BM_ChaCha20(benchmark::State& state) {
  auth::Key key = auth::KeyFromString("bench");
  wire::Bytes data(static_cast<size_t>(state.range(0)), 0x33);
  for (auto _ : state) {
    auth::ChaCha20Crypt(key, 7, &data);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(1024)->Arg(65536);

void BM_TicketSealUnseal(benchmark::State& state) {
  auth::Key server = auth::KeyFromString("server");
  auth::TicketContents contents{7, "settop/11.1.0.1", auth::KeyFromString("s")};
  for (auto _ : state) {
    wire::Bytes blob = auth::SealTicketBlob(server, contents);
    benchmark::DoNotOptimize(auth::UnsealTicketBlobWithId(server, 7, blob));
  }
}
BENCHMARK(BM_TicketSealUnseal);

// --- Naming ------------------------------------------------------------------

void BM_ContextTreeApplyBind(benchmark::State& state) {
  int i = 0;
  naming::ContextTree tree;
  naming::NameUpdate mkdir;
  mkdir.op = naming::NameOp::kBindNewContext;
  mkdir.path = {"svc"};
  (void)tree.Apply(mkdir);
  for (auto _ : state) {
    naming::NameUpdate bind;
    bind.op = naming::NameOp::kBind;
    bind.path = {"svc", "x" + std::to_string(i++)};
    bind.ref.incarnation = 1;
    benchmark::DoNotOptimize(tree.Apply(bind));
  }
}
BENCHMARK(BM_ContextTreeApplyBind);

void BM_BuiltinSelectorNeighborhood(benchmark::State& state) {
  std::vector<std::string> names{"1", "2", "3", "4", "5", "6"};
  std::vector<wire::ObjectRef> refs(6);
  uint64_t rr = 0;
  uint32_t caller = MakeSettopHost(4, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naming::EvalBuiltinSelector(
        naming::BuiltinSelector::kNeighborhood, caller, names, refs, &rr));
  }
}
BENCHMARK(BM_BuiltinSelectorNeighborhood);

// --- Simulated RPC round trip ---------------------------------------------------

class PingSkeleton : public rpc::Skeleton {
 public:
  std::string_view interface_name() const override { return "itv.Ping"; }
  void Dispatch(uint32_t, const wire::Bytes&, const rpc::CallContext&,
                rpc::ReplyFn reply) override {
    rpc::ReplyOk(reply);
  }
};

void BM_SimRpcRoundTrip(benchmark::State& state) {
  sim::Cluster cluster;
  sim::Node& a = cluster.AddServer("a");
  sim::Node& b = cluster.AddServer("b");
  sim::Process& server = a.Spawn("server", 700);
  sim::Process& client = b.Spawn("client");
  auto* skeleton = server.Emplace<PingSkeleton>();
  wire::ObjectRef ref = server.runtime().Export(skeleton);
  for (auto _ : state) {
    auto f = client.runtime().Invoke(ref, 1, {});
    cluster.RunFor(Duration::Millis(10));
    if (!f.is_ready() || !f.result().ok()) {
      state.SkipWithError("rpc failed");
      return;
    }
  }
}
BENCHMARK(BM_SimRpcRoundTrip);

// --- Report section ----------------------------------------------------------
// Hand-timed numbers for the merged bench report (bench_report.h); the
// google-benchmark table above is for humans, these are for the perf
// baseline and CI artifact.

void WriteReport() {
  using itv::bench::MeasureNsPerOp;
  auth::Key key = auth::KeyFromString("bench");

  wire::Message msg;
  msg.kind = wire::MsgKind::kRequest;
  msg.call_id = 42;
  msg.object_id = 1;
  msg.method_id = 3;
  msg.auth.principal = "settop/11.1.0.1";
  msg.payload.assign(1024, 0xab);
  wire::Bytes encoded = wire::EncodeMessage(msg);

  itv::bench::ReportSection report("bench_micro");
  report.Set("encode_ns_1024", MeasureNsPerOp([&] {
               benchmark::DoNotOptimize(wire::EncodeMessage(msg));
             }));
  wire::Bytes buffer;
  report.Set("encode_to_ns_1024", MeasureNsPerOp([&] {
               wire::Writer w(std::move(buffer));
               wire::EncodeMessageTo(msg, w);
               buffer = w.TakeBytes();
               benchmark::DoNotOptimize(buffer.data());
             }));
  report.Set("decode_ns_1024", MeasureNsPerOp([&] {
               wire::Message out;
               benchmark::DoNotOptimize(wire::DecodeMessage(encoded, &out));
             }));
  wire::Bytes frame;
  report.Set("decode_move_ns_1024", MeasureNsPerOp([&] {
               frame = encoded;
               wire::Message out;
               benchmark::DoNotOptimize(
                   wire::DecodeMessage(std::move(frame), &out));
             }));
  report.Set("sign_ns_1024", MeasureNsPerOp([&] {
               benchmark::DoNotOptimize(
                   auth::HmacSha256(key, msg.SignedPortion()));
             }));
  report.Set("sign_stream_ns_1024", MeasureNsPerOp([&] {
               auth::HmacSha256Stream hmac(key);
               msg.ForEachSignedSpan([&hmac](const void* data, size_t n) {
                 hmac.Update(data, n);
               });
               benchmark::DoNotOptimize(hmac.Finish());
             }));
  // The issue's headline unit: one message encoded and signed, end to end.
  report.Set("encode_sign_ns_1024", MeasureNsPerOp([&] {
               wire::Writer w(std::move(buffer));
               wire::EncodeMessageTo(msg, w);
               buffer = w.TakeBytes();
               auth::HmacSha256Stream hmac(key);
               msg.ForEachSignedSpan([&hmac](const void* data, size_t n) {
                 hmac.Update(data, n);
               });
               benchmark::DoNotOptimize(hmac.Finish());
             }));
  report.SetInt("payload_bytes", 1024);
  report.WriteMerged();
}

}  // namespace
}  // namespace itv

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  itv::WriteReport();
  return 0;
}
