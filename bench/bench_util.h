// Shared helpers for the experiment harnesses: fixed-width table output and
// future-waiting against a simulated cluster.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/future.h"
#include "src/common/histogram.h"
#include "src/sim/cluster.h"

namespace itv::bench {

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRow(const std::vector<std::string>& cells) {
  for (const std::string& cell : cells) {
    std::printf("%-16s", cell.c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtInt(uint64_t v) { return std::to_string(v); }

// Runs the cluster until `f` completes (or the limit passes).
template <typename T>
Result<T> WaitOn(sim::Cluster& cluster, Future<T> f,
                 Duration limit = Duration::Seconds(10)) {
  Time deadline = cluster.Now() + limit;
  while (!f.is_ready() && cluster.Now() < deadline) {
    cluster.RunFor(Duration::Millis(50));
  }
  if (!f.is_ready()) {
    return DeadlineExceededError("bench future not ready");
  }
  return f.result();
}

}  // namespace itv::bench

#endif  // BENCH_BENCH_UTIL_H_
