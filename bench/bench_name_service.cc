// Experiment E6 — Name service replication costs (paper Section 4.6).
//
// "Once a master is elected, all updates are forwarded to the master, which
//  serializes them and multicasts them to the slaves. Any name service
//  replica can process a resolve or list operation without contacting the
//  master... Scalability is improved because any server can process a name
//  lookup locally... requiring all updates to be serialized through the
//  master should not impact the scalability of our system."
//
// Harness: sweep replica count; measure (a) resolve latency against a LOCAL
// replica — flat regardless of replica count, with aggregate lookup capacity
// growing with replicas; (b) bind (update) latency through a slave — pays
// the forward hop; (c) wire messages per update — grows with the replica
// count (the master's multicast), the deliberate cost of hot-standby naming.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/naming/name_client.h"
#include "src/svc/harness.h"

namespace itv {
namespace {

struct Row {
  size_t replicas;
  double resolve_local_ms;
  double resolve_p99_ms;
  double bind_via_slave_ms;
  double bind_p99_ms;
  double msgs_per_update;
  double msgs_per_resolve;
};

Row Measure(size_t replicas) {
  svc::HarnessOptions opts;
  opts.server_count = replicas;
  opts.start_csc = false;
  svc::ClusterHarness harness(opts);
  harness.Boot();
  sim::Cluster& cluster = harness.cluster();

  // A client on the LAST server (a slave unless it won the election).
  sim::Process& client = harness.SpawnProcessOn(replicas - 1, "client");
  naming::NameClient nc = harness.ClientFor(client);

  // Seed a binding to resolve.
  wire::ObjectRef target;
  target.endpoint = {harness.HostOf(0), 9999};
  target.incarnation = 42;
  target.type_id = 7;
  target.object_id = 1;
  (void)bench::WaitOn(cluster, nc.Bind("svc/seed", target));

  constexpr int kOps = 200;

  // Runs one async op, recording its exact virtual-time latency via the
  // completion callback (coarse stepping would quantize it).
  auto timed = [&cluster](auto make_future, Histogram* out_ms) {
    Time t0 = cluster.Now();
    Time t1 = t0;
    bool done = false;
    make_future().OnReady([&](const Result<void>& r) {
      t1 = cluster.Now();
      done = r.ok();
    });
    for (int step = 0; step < 5000 && !done; ++step) {
      cluster.RunFor(Duration::Millis(1));
    }
    if (done) {
      out_ms->Record((t1 - t0).seconds() * 1000.0);
    }
  };

  // (a) Local resolve latency + message cost.
  Histogram resolve_ms;
  uint64_t msgs_before = harness.metrics().Get("net.msg.total");
  for (int i = 0; i < kOps; ++i) {
    timed(
        [&] {
          Promise<void> p;
          nc.Resolve("svc/seed").OnReady([p](const Result<wire::ObjectRef>& r) mutable {
            p.Set(r.ok() ? Result<void>() : Result<void>(r.status()));
          });
          return p.future();
        },
        &resolve_ms);
  }
  double msgs_per_resolve =
      static_cast<double>(harness.metrics().Get("net.msg.total") - msgs_before) /
      kOps;

  // (b) Bind latency through this (likely slave) replica + multicast cost.
  Histogram bind_ms;
  msgs_before = harness.metrics().Get("net.msg.total");
  for (int i = 0; i < kOps; ++i) {
    wire::ObjectRef ref = target;
    ref.object_id = static_cast<uint64_t>(i) + 100;
    std::string name = "svc/b" + std::to_string(i);
    timed([&] { return nc.Bind(name, ref); }, &bind_ms);
  }
  double msgs_per_update =
      static_cast<double>(harness.metrics().Get("net.msg.total") - msgs_before) /
      kOps;

  return Row{replicas,        resolve_ms.Percentile(50),
             resolve_ms.Percentile(99), bind_ms.Percentile(50),
             bind_ms.Percentile(99),    msgs_per_update,
             msgs_per_resolve};
}

}  // namespace
}  // namespace itv

int main() {
  using namespace itv;
  bench::PrintHeader(
      "E6: name service — local reads vs master-serialized updates (paper 4.6)");
  std::printf(
      "clients talk to the replica on their own server; binds are forwarded "
      "to the master\nand multicast to every slave.\n\n");
  bench::PrintRow({"replicas", "resolve_p50_ms", "resolve_p99_ms",
                   "bind_p50_ms", "bind_p99_ms", "msgs/resolve",
                   "msgs/update"});
  for (size_t replicas : {1, 2, 3, 5, 8}) {
    Row row = Measure(replicas);
    bench::PrintRow({bench::FmtInt(row.replicas),
                     bench::Fmt("%.3f", row.resolve_local_ms),
                     bench::Fmt("%.3f", row.resolve_p99_ms),
                     bench::Fmt("%.3f", row.bind_via_slave_ms),
                     bench::Fmt("%.3f", row.bind_p99_ms),
                     bench::Fmt("%.1f", row.msgs_per_resolve),
                     bench::Fmt("%.1f", row.msgs_per_update)});
  }
  std::printf(
      "\nexpect: resolve latency and msgs/resolve flat (~2: request+reply to "
      "the local\nreplica) regardless of replica count => aggregate lookup "
      "capacity grows linearly.\nbind latency adds the forward hop; "
      "msgs/update grows ~linearly with replicas\n(multicast) — fine because "
      "'updates only occur when services are started or restarted'.\n");
  return 0;
}
