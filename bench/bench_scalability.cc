// Experiment E2 — Linear scalability (paper Sections 1, 9.6).
//
// "Scalable services in our system are typically implemented with a replica
//  running on each server... To expand the system's capacity, one acquires a
//  new server to run an additional replica for each service... system
//  capacity grows linearly with the number of servers."
//
// Harness: clusters of 1..8 servers, with settops in proportion (one
// neighborhood per server). Every settop boots and opens a movie; each MDS
// replica admits up to capacity/bitrate streams. We report:
//   - admitted concurrent streams (should be ~16 x servers, the per-server
//    disk/NIC limit, since demand always exceeds capacity);
//   - movie-open latency (should stay flat: opens touch only the local NS
//    replica, one cmgr, one trunk, one MDS);
//   - RPC messages per successful open (flat = no hidden central hot spot).
//
// A second "channel surf" phase has every admitted settop close its movie and
// open another one, twice. Re-opens re-resolve the MMS, so this phase
// measures the client-side resolution cache: with the cache each surf open
// skips the name-service round trip entirely. Each cluster size runs twice —
// cache detached, then cache attached — on identical workloads, and the
// surf-phase msgs/open and NS resolve counts are reported for both.

#include <algorithm>
#include <cstdio>
#include <set>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/common/rand.h"
#include "src/load/load_board.h"
#include "src/media/factories.h"
#include "src/rpc/shard_router.h"
#include "src/settop/app_manager.h"
#include "src/settop/vod_app.h"
#include "src/svc/harness.h"
#include "src/wire/shard_map.h"

namespace itv {
namespace {

constexpr size_t kSurfRounds = 2;

struct RunResult {
  size_t servers = 0;
  size_t settops = 0;
  size_t admitted = 0;
  size_t rejected = 0;
  double mean_open_s = 0;
  double p50_open_s = 0;
  double p99_open_s = 0;
  double cold_msgs_per_open = 0;
  // Channel-surf phase: every admitted settop closes and re-opens, twice.
  size_t surf_opens = 0;
  double surf_msgs_per_open = 0;
  uint64_t surf_ns_resolves = 0;
  uint64_t cache_hits = 0;
};

RunResult RunCluster(size_t servers, size_t settops_per_server,
                     bool use_cache) {
  svc::HarnessOptions opts;
  opts.server_count = servers;
  opts.neighborhood_count = static_cast<uint8_t>(servers);
  svc::ClusterHarness harness(opts);

  media::MediaDeployment deploy;
  // A catalog big enough that placement spreads; every title on 2 servers.
  deploy.movies = media::SyntheticCatalog(
      /*count=*/40, servers, /*replicas=*/std::min<size_t>(2, servers));
  deploy.mds_capacity_bps = 48'000'000;      // 16 x 3 Mb/s streams per server.
  deploy.trunk_capacity_bps = 200'000'000;
  media::RegisterMediaServices(harness, deploy);
  harness.Boot();
  harness.cluster().RunFor(Duration::Seconds(12));

  // Spawn settops; each opens a uniformly chosen movie via the MMS directly
  // (bypassing the boot/download path to isolate the open pipeline). Uniform
  // popularity keeps demand spreadable; with a strongly Zipf catalog the
  // limit becomes movie placement, not infrastructure.
  Rng rng(1234 + servers);
  size_t total = servers * settops_per_server;
  struct Viewer {
    sim::Process* process;
    naming::NameClient nc;
    uint32_t settop_host = 0;
    Future<media::MmsTicket> open;
    Time started;
  };
  std::vector<Viewer> viewers;
  viewers.reserve(total);

  RunResult result;
  result.servers = servers;
  result.settops = total;

  uint64_t msgs_before = harness.metrics().Get("net.msg.total");
  Histogram open_latency;

  for (size_t i = 0; i < total; ++i) {
    uint8_t nb = static_cast<uint8_t>(1 + (i % servers));
    sim::Node& settop = harness.AddSettop(nb);
    sim::Process& p = settop.Spawn("viewer");
    naming::NameClient nc = harness.ClientFor(p);
    if (!use_cache) {
      nc.set_resolution_cache(nullptr);  // Baseline: every resolve hits NS.
    }
    std::string title = "movie-" + std::to_string(rng.Below(40));

    Viewer viewer{&p, nc, settop.host(), {}, harness.cluster().Now()};
    // Resolve then open; the latency histogram records resolve+open time for
    // the opens that are admitted.
    Promise<media::MmsTicket> done;
    viewer.open = done.future();
    sim::Cluster* cluster = &harness.cluster();
    Time started = viewer.started;
    nc.Resolve(std::string(media::kMmsName))
        .OnReady([&p, title, done, cluster, started, &open_latency,
                  settop_host = settop.host()](
                     const Result<wire::ObjectRef>& mms) mutable {
          if (!mms.ok()) {
            done.Set(mms.status());
            return;
          }
          media::MmsProxy proxy(p.runtime(), *mms);
          proxy.Open(title, settop_host, wire::ObjectRef{})
              .OnReady([done, cluster, started, &open_latency](
                           const Result<media::MmsTicket>& t) mutable {
                if (t.ok()) {
                  open_latency.Record((cluster->Now() - started).seconds());
                }
                done.Set(t);
              });
        });
    viewers.push_back(std::move(viewer));
    // Pace arrivals so MMS load snapshots refresh (5 s cadence).
    harness.cluster().RunFor(Duration::Millis(300));
  }
  harness.cluster().RunFor(Duration::Seconds(10));

  for (Viewer& viewer : viewers) {
    if (viewer.open.is_ready() && viewer.open.result().ok()) {
      ++result.admitted;
    } else {
      ++result.rejected;
    }
  }
  uint64_t cold_msgs_after = harness.metrics().Get("net.msg.total");
  result.mean_open_s = open_latency.Mean();
  result.p50_open_s = open_latency.Percentile(50);
  result.p99_open_s = open_latency.Percentile(99);
  result.cold_msgs_per_open =
      result.admitted == 0
          ? 0
          : static_cast<double>(cold_msgs_after - msgs_before) /
                static_cast<double>(result.admitted);

  // --- Channel-surf phase: close, re-resolve the MMS, open another movie.
  uint64_t surf_msgs_before = harness.metrics().Get("net.msg.total");
  uint64_t surf_resolves_before = harness.metrics().Get("ns.resolve");
  for (size_t round = 0; round < kSurfRounds; ++round) {
    for (Viewer& viewer : viewers) {
      if (!viewer.open.is_ready() || !viewer.open.result().ok()) {
        continue;  // Never admitted; stays out.
      }
      media::MmsTicket held = *viewer.open.result();
      std::string title = "movie-" + std::to_string(rng.Below(40));
      Promise<media::MmsTicket> done;
      viewer.open = done.future();
      sim::Process* p = viewer.process;
      uint32_t settop_host = viewer.settop_host;
      naming::NameClient nc = viewer.nc;
      nc.Resolve(std::string(media::kMmsName))
          .OnReady([p, held, title, done, settop_host,
                    nc](const Result<wire::ObjectRef>& mms) mutable {
            if (!mms.ok()) {
              done.Set(mms.status());
              return;
            }
            media::MmsProxy proxy(p->runtime(), *mms);
            proxy.Close(held.movie)
                .OnReady([p, title, done, settop_host, nc](
                             const Result<void>& closed) mutable {
                  if (!closed.ok()) {
                    done.Set(closed.status());
                    return;
                  }
                  // Re-resolve per open, as a settop app would; with the
                  // cache attached this is answered locally.
                  nc.Resolve(std::string(media::kMmsName))
                      .OnReady([p, title, done, settop_host](
                                   const Result<wire::ObjectRef>& mms2) mutable {
                        if (!mms2.ok()) {
                          done.Set(mms2.status());
                          return;
                        }
                        media::MmsProxy proxy2(p->runtime(), *mms2);
                        proxy2.Open(title, settop_host, wire::ObjectRef{})
                            .OnReady(
                                [done](const Result<media::MmsTicket>& t) mutable {
                                  done.Set(t);
                                });
                      });
                });
          });
      harness.cluster().RunFor(Duration::Millis(50));
    }
    harness.cluster().RunFor(Duration::Seconds(5));
    for (Viewer& viewer : viewers) {
      if (viewer.open.is_ready() && viewer.open.result().ok()) {
        ++result.surf_opens;
      }
    }
  }
  uint64_t surf_msgs_after = harness.metrics().Get("net.msg.total");
  result.surf_msgs_per_open =
      result.surf_opens == 0
          ? 0
          : static_cast<double>(surf_msgs_after - surf_msgs_before) /
                static_cast<double>(result.surf_opens);
  result.surf_ns_resolves =
      harness.metrics().Get("ns.resolve") - surf_resolves_before;
  result.cache_hits = harness.metrics().Get("resolve.cache.hit");
  return result;
}

// --- E2b: sharded MMS — per-primary session load divides by the shard count.
//
// Fixed cluster (4 servers), fixed settop population; only the MMS shard
// count varies. Every settop opens through the shard router, so its sessions
// land on the shard its host hashes to. With 1 shard the single primary
// carries every session; with N shards the worst-loaded primary should carry
// ~1/N of them, and placement staggering should spread the shard primaries
// across distinct hosts.

struct ShardRunResult {
  uint32_t shards = 0;
  size_t settops = 0;
  size_t admitted = 0;
  double p50_open_s = 0;
  double p99_open_s = 0;
  uint32_t max_primary_sessions = 0;
  uint32_t total_sessions = 0;
  size_t primary_hosts = 0;  // Distinct hosts holding a shard primary.
};

ShardRunResult RunShardCluster(uint32_t shards, size_t settop_count) {
  constexpr size_t kServers = 4;
  svc::HarnessOptions opts;
  opts.server_count = kServers;
  opts.neighborhood_count = static_cast<uint8_t>(kServers);
  svc::ClusterHarness harness(opts);

  media::MediaDeployment deploy;
  deploy.movies = media::SyntheticCatalog(/*count=*/40, kServers,
                                          /*replicas=*/2);
  // Generous capacity: this phase measures broker load distribution, not
  // admission control, so every open should be admitted.
  deploy.mds_capacity_bps = 96'000'000;
  deploy.trunk_capacity_bps = 400'000'000;
  deploy.mms_shards = shards;
  deploy.mms_replicas = kServers;  // Every server hosts every shard's lifecycle.
  media::RegisterMediaServices(harness, deploy);
  harness.Boot();
  // Settle and let the placement stagger window elapse so each shard's
  // preferred replica wins its opening election.
  harness.cluster().RunFor(Duration::Seconds(16));

  ShardRunResult result;
  result.shards = shards;
  result.settops = settop_count;

  Rng rng(99);  // Same titles at every shard count.
  std::vector<Future<media::MmsTicket>> opens(settop_count);
  Histogram open_latency;
  for (size_t i = 0; i < settop_count; ++i) {
    uint8_t nb = static_cast<uint8_t>(1 + (i % kServers));
    sim::Node& settop = harness.AddSettop(nb);
    sim::Process& p = settop.Spawn("viewer");
    naming::NameClient nc = harness.ClientFor(p);
    auto* table =
        p.Emplace<rpc::BindingTable>(p.runtime(), nc.PathResolverFn());
    auto* router = p.Emplace<rpc::ShardRouter>(*table);
    rpc::ShardedClient<media::MmsProxy> mms(
        *router, std::string(media::kMmsName), rpc::BindingOptions{});
    std::string title = "movie-" + std::to_string(rng.Below(40));
    Promise<media::MmsTicket> done;
    opens[i] = done.future();
    sim::Cluster* cluster = &harness.cluster();
    Time started = cluster->Now();
    mms.Call<media::MmsTicket>(
        settop.host(),
        [title, settop_host = settop.host()](const media::MmsProxy& proxy) {
          return proxy.Open(title, settop_host, wire::ObjectRef{});
        },
        [done, cluster, started,
         &open_latency](Result<media::MmsTicket> t) mutable {
          if (t.ok()) {
            open_latency.Record((cluster->Now() - started).seconds());
          }
          done.Set(std::move(t));
        });
    harness.cluster().RunFor(Duration::Millis(200));
  }
  harness.cluster().RunFor(Duration::Seconds(10));
  for (const Future<media::MmsTicket>& open : opens) {
    if (open.is_ready() && open.result().ok()) {
      ++result.admitted;
    }
  }
  result.p50_open_s = open_latency.Percentile(50);
  result.p99_open_s = open_latency.Percentile(99);

  // Per-primary load: ask every shard primary for its session count.
  sim::Process& probe = harness.SpawnProcessOn(0, "probe");
  naming::NameClient nc = harness.ClientFor(probe);
  wire::ShardMap map{shards, deploy.shard_salt};
  std::set<uint32_t> hosts;
  for (uint32_t s = 0; s < std::max<uint32_t>(shards, 1); ++s) {
    auto ref = bench::WaitOn(
        harness.cluster(), nc.Resolve(wire::ShardPath(media::kMmsName, s, map)),
        Duration::Seconds(5));
    if (!ref.ok()) {
      continue;
    }
    hosts.insert(ref->endpoint.host);
    media::MmsProxy proxy(probe.runtime(), *ref);
    auto count = bench::WaitOn(harness.cluster(), proxy.ListSessions(),
                               Duration::Seconds(5));
    if (count.ok()) {
      result.total_sessions += *count;
      result.max_primary_sessions =
          std::max(result.max_primary_sessions, *count);
    }
  }
  result.primary_hosts = hosts.size();
  return result;
}

// --- E2c: hot-shard skew — board-backed sibling retry vs blind shedding.
//
// Fixed cluster (4 servers, 4 MMS shards, admission pool = 1/4 of cluster
// MDS capacity per shard), 32 VodApp viewers with ~80% of their settop hosts
// hashing to shard 0. The hot shard's pool covers 16 streams, so a quarter
// of the hot opens are shed. With the load board on, a shed viewer retries
// against the least-loaded sibling shard and every open lands; with it off,
// the shed opens fail back to the viewer. Also runs an unskewed control to
// bound the skewed open latency.

struct HotShardResult {
  bool board = false;
  bool skewed = true;
  size_t settops = 0;
  size_t playing = 0;
  size_t failed = 0;          // Opens that ended in an error (shed, ...).
  uint64_t shard_rejects = 0; // Sum of per-shard admission rejects.
  uint64_t sibling_retries = 0;
  double p50_open_s = 0;
  double p99_open_s = 0;
  // Worst shard's ledger. reserved may sit above the pool after the
  // ownership reconciler hands sibling-opened sessions back to the shard
  // their settop hashes to (adopted, never granted); peak_granted may not.
  int64_t max_reserved_bps = 0;
  int64_t max_peak_granted_bps = 0;
  int64_t pool_bps = 0;
  bool pool_sound = true;  // Every shard: peak_granted <= pool.
};

HotShardResult RunHotShardCluster(bool board, bool skewed,
                                  size_t settop_count) {
  constexpr size_t kServers = 4;
  constexpr uint32_t kShards = 4;
  svc::HarnessOptions opts;
  opts.server_count = kServers;
  opts.neighborhood_count = static_cast<uint8_t>(kServers);
  svc::ClusterHarness harness(opts);

  media::MediaDeployment deploy;
  deploy.movies = media::SyntheticCatalog(/*count=*/40, kServers,
                                          /*replicas=*/2);
  deploy.mds_capacity_bps = 48'000'000;
  deploy.trunk_capacity_bps = 400'000'000;
  deploy.mms_shards = kShards;
  deploy.mms_replicas = kServers;
  deploy.load_board = board;  // Off: admission still on, no sibling retry.
  media::RegisterMediaServices(harness, deploy);
  harness.Boot();
  harness.cluster().RunFor(Duration::Seconds(16));

  HotShardResult result;
  result.board = board;
  result.skewed = skewed;
  result.settops = settop_count;

  wire::ShardMap map{kShards, deploy.shard_salt};
  Rng rng(4242);  // Same titles with the board on and off.
  struct HotViewer {
    settop::VodApp* vod = nullptr;
    Time started;
    Status final_status;
    bool done = false;
    double open_s = -1;  // Time to `playing`, -1 until observed.
  };
  std::vector<HotViewer> viewers(settop_count);
  for (size_t i = 0; i < settop_count; ++i) {
    uint8_t nb = static_cast<uint8_t>(1 + (i % kServers));
    sim::Node* settop = &harness.AddSettop(nb);
    if (skewed && i % 5 != 4) {
      // 80/20 skew, same spawn-and-filter as the chaos --skewed-load sweep:
      // keep adding settops until one's host hashes to the hot shard.
      for (int attempt = 0;
           attempt < 32 && wire::ShardOf(settop->host(), map) != 0;
           ++attempt) {
        settop = &harness.AddSettop(nb);
      }
    }
    sim::Process& p = settop->Spawn("viewer");
    settop::VodApp::Options vopts;
    if (board) {
      vopts.load_board_path = std::string(load::kLoadBoardName);
    }
    viewers[i].vod = p.Emplace<settop::VodApp>(p.runtime(), p.executor(),
                                               harness.ClientFor(p), vopts,
                                               &harness.metrics());
    viewers[i].started = harness.cluster().Now();
    std::string title = "movie-" + std::to_string(rng.Below(40));
    HotViewer* viewer = &viewers[i];
    viewer->vod->PlayMovie(title, [viewer](Status status) {
      viewer->final_status = status;
      viewer->done = true;
    });
    // Pace arrivals so load reports keep up with the skew (2 s cadence), and
    // sample `playing` transitions for the open-latency histogram.
    for (int tick = 0; tick < 4; ++tick) {
      harness.cluster().RunFor(Duration::Millis(50));
      for (HotViewer& v : viewers) {
        if (v.open_s < 0 && v.vod != nullptr && v.vod->playing()) {
          v.open_s = (harness.cluster().Now() - v.started).seconds();
        }
      }
    }
  }
  for (int tick = 0; tick < 200; ++tick) {
    harness.cluster().RunFor(Duration::Millis(50));
    for (HotViewer& v : viewers) {
      if (v.open_s < 0 && v.vod->playing()) {
        v.open_s = (harness.cluster().Now() - v.started).seconds();
      }
    }
  }

  Histogram open_latency;
  for (HotViewer& v : viewers) {
    if (v.vod->playing()) {
      ++result.playing;
      if (v.open_s >= 0) {
        open_latency.Record(v.open_s);
      }
    } else if (v.done && !v.final_status.ok()) {
      ++result.failed;
    }
    result.sibling_retries += v.vod->sibling_retries();
  }
  result.p50_open_s = open_latency.Percentile(50);
  result.p99_open_s = open_latency.Percentile(99);

  // Audit every shard's admission ledger over RPC, like the chaos
  // admission-sound invariant: grants must never have exceeded the pool.
  sim::Process& probe = harness.SpawnProcessOn(0, "probe");
  naming::NameClient nc = harness.ClientFor(probe);
  for (uint32_t s = 0; s < kShards; ++s) {
    auto ref = bench::WaitOn(
        harness.cluster(), nc.Resolve(wire::ShardPath(media::kMmsName, s, map)),
        Duration::Seconds(5));
    if (!ref.ok()) {
      result.pool_sound = false;
      continue;
    }
    media::MmsProxy proxy(probe.runtime(), *ref);
    auto state = bench::WaitOn(harness.cluster(), proxy.GetAdmission(),
                               Duration::Seconds(5));
    if (!state.ok()) {
      result.pool_sound = false;
      continue;
    }
    result.shard_rejects += state->rejects;
    result.pool_bps = state->pool_bps;
    result.max_reserved_bps =
        std::max(result.max_reserved_bps, state->reserved_bps);
    result.max_peak_granted_bps =
        std::max(result.max_peak_granted_bps, state->peak_granted_bps);
    if (state->pool_bps > 0 && state->peak_granted_bps > state->pool_bps) {
      result.pool_sound = false;
    }
  }
  return result;
}

}  // namespace
}  // namespace itv

int main() {
  using namespace itv;
  bench::PrintHeader("E2: capacity scales linearly with servers (paper 9.6)");
  std::printf(
      "demand: 24 settops/server x 3 Mb/s; per-server MDS capacity 48 Mb/s "
      "(16 streams)\nsurf phase: every admitted settop closes + re-opens "
      "twice, re-resolving the MMS\n\n");
  bench::PrintRow({"servers", "cache", "admitted", "open_p50_s", "open_p99_s",
                   "cold_m/open", "surf_m/open", "surf_ns_res", "hits"});
  bench::ReportSection report("bench_scalability");
  for (size_t servers : {1, 2, 4, 8}) {
    RunResult off = RunCluster(servers, /*settops_per_server=*/24,
                               /*use_cache=*/false);
    RunResult on = RunCluster(servers, /*settops_per_server=*/24,
                              /*use_cache=*/true);
    for (const RunResult* r : {&off, &on}) {
      bench::PrintRow(
          {bench::FmtInt(r->servers), r == &on ? "on" : "off",
           bench::FmtInt(r->admitted), bench::Fmt("%.4f", r->p50_open_s),
           bench::Fmt("%.4f", r->p99_open_s),
           bench::Fmt("%.1f", r->cold_msgs_per_open),
           bench::Fmt("%.1f", r->surf_msgs_per_open),
           bench::FmtInt(r->surf_ns_resolves), bench::FmtInt(r->cache_hits)});
    }
    std::string prefix = "servers_" + std::to_string(servers) + "_";
    report.SetInt(prefix + "admitted", on.admitted);
    report.Set(prefix + "open_p50_s", on.p50_open_s);
    report.Set(prefix + "open_p99_s", on.p99_open_s);
    report.Set(prefix + "cold_msgs_per_open", on.cold_msgs_per_open);
    report.Set(prefix + "surf_msgs_per_open_nocache", off.surf_msgs_per_open);
    report.Set(prefix + "surf_msgs_per_open_cache", on.surf_msgs_per_open);
    report.SetInt(prefix + "surf_ns_resolves_nocache", off.surf_ns_resolves);
    report.SetInt(prefix + "surf_ns_resolves_cache", on.surf_ns_resolves);
    report.SetInt(prefix + "resolve_cache_hits", on.cache_hits);
  }
  bench::PrintHeader(
      "E2b: sharded MMS — per-primary session load divides by shard count");
  std::printf(
      "4 servers, 64 settops opening through the shard router; only "
      "mms_shards varies.\nmax_primary = worst-loaded shard primary's session "
      "count; hosts = distinct servers\nholding a shard primary (placement "
      "staggering should spread them).\n\n");
  bench::PrintRow({"shards", "admitted", "sessions", "max_primary", "hosts",
                   "open_p50_s", "open_p99_s"});
  uint32_t single_shard_max = 0;
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    ShardRunResult r = RunShardCluster(shards, /*settop_count=*/64);
    if (shards == 1) {
      single_shard_max = r.max_primary_sessions;
    }
    bench::PrintRow({bench::FmtInt(r.shards), bench::FmtInt(r.admitted),
                     bench::FmtInt(r.total_sessions),
                     bench::FmtInt(r.max_primary_sessions),
                     bench::FmtInt(r.primary_hosts),
                     bench::Fmt("%.4f", r.p50_open_s),
                     bench::Fmt("%.4f", r.p99_open_s)});
    std::string prefix = "shards_" + std::to_string(shards) + "_";
    report.SetInt(prefix + "admitted", r.admitted);
    report.SetInt(prefix + "sessions", r.total_sessions);
    report.SetInt(prefix + "max_primary_sessions", r.max_primary_sessions);
    report.SetInt(prefix + "primary_hosts", r.primary_hosts);
    report.Set(prefix + "open_p50_s", r.p50_open_s);
    report.Set(prefix + "open_p99_s", r.p99_open_s);
    if (shards == 4 && single_shard_max > 0 && r.max_primary_sessions > 0) {
      report.Set("shards_4_load_reduction",
                 static_cast<double>(single_shard_max) /
                     static_cast<double>(r.max_primary_sessions));
    }
  }
  std::printf(
      "\nexpect: max_primary ~ 64/shards (>=2x reduction at 4 shards vs 1) "
      "and hosts ~\nmin(shards, servers); open latency flat — the router adds "
      "one cached map lookup.\n");

  bench::PrintHeader(
      "E2c: hot-shard skew — load-board sibling retry vs blind shedding");
  std::printf(
      "4 servers, 4 MMS shards, admission pool 48 Mb/s (16 streams) per "
      "shard; 32 VodApp\nviewers, ~80%% of them on the hot shard. board=on: "
      "shed opens retry the\nleast-loaded sibling from the board; board=off: "
      "shed opens fail to the viewer.\n\n");
  bench::PrintRow({"board", "skew", "playing", "failed", "rejects", "retries",
                   "open_p50_s", "open_p99_s", "max_grant_mbps",
                   "max_rsv_mbps"});
  HotShardResult control =
      RunHotShardCluster(/*board=*/true, /*skewed=*/false, /*settop_count=*/32);
  HotShardResult board_off =
      RunHotShardCluster(/*board=*/false, /*skewed=*/true, /*settop_count=*/32);
  HotShardResult board_on =
      RunHotShardCluster(/*board=*/true, /*skewed=*/true, /*settop_count=*/32);
  for (const HotShardResult* r : {&control, &board_off, &board_on}) {
    bench::PrintRow(
        {r->board ? "on" : "off", r->skewed ? "80/20" : "uniform",
         bench::FmtInt(r->playing), bench::FmtInt(r->failed),
         bench::FmtInt(r->shard_rejects), bench::FmtInt(r->sibling_retries),
         bench::Fmt("%.4f", r->p50_open_s), bench::Fmt("%.4f", r->p99_open_s),
         bench::Fmt("%.1f",
                    static_cast<double>(r->max_peak_granted_bps) / 1e6),
         bench::Fmt("%.1f", static_cast<double>(r->max_reserved_bps) / 1e6)});
  }
  for (const auto& [prefix, r] :
       {std::pair<std::string, const HotShardResult*>{"e2c_unskewed_",
                                                      &control},
        {"e2c_board_off_", &board_off},
        {"e2c_board_on_", &board_on}}) {
    report.SetInt(prefix + "playing", r->playing);
    report.SetInt(prefix + "failed_opens", r->failed);
    report.SetInt(prefix + "shard_rejects", r->shard_rejects);
    report.SetInt(prefix + "sibling_retries", r->sibling_retries);
    report.Set(prefix + "open_p50_s", r->p50_open_s);
    report.Set(prefix + "open_p99_s", r->p99_open_s);
    report.SetInt(prefix + "max_reserved_bps",
                  static_cast<uint64_t>(std::max<int64_t>(0,
                                                          r->max_reserved_bps)));
    report.SetInt(
        prefix + "max_peak_granted_bps",
        static_cast<uint64_t>(std::max<int64_t>(0, r->max_peak_granted_bps)));
    report.SetInt(prefix + "pool_sound", r->pool_sound ? 1 : 0);
  }
  report.SetInt("e2c_pool_bps",
                static_cast<uint64_t>(std::max<int64_t>(0, board_on.pool_bps)));
  // The PR's acceptance gates (also checked by the chaos admission-sound
  // invariant): with the board on, every skewed open lands, no shard ever
  // GRANTED past its pool (reserved may exceed it after the ownership
  // reconciler hands sibling-opened sessions back to the hot shard —
  // adopted, never granted), and the skew costs at most 2x the unskewed
  // open p50 (plus one 50 ms sampling step of slack).
  ITV_CHECK(board_on.failed == 0)
      << board_on.failed << " opens failed with the board on";
  ITV_CHECK(board_on.pool_sound && board_off.pool_sound && control.pool_sound)
      << "an MMS shard granted reservations past its admission pool";
  ITV_CHECK(board_off.failed > 0)
      << "skewed board-off run shed nothing; the skew is not saturating";
  ITV_CHECK(board_on.p50_open_s <= 2 * control.p50_open_s + 0.05)
      << "skewed p50 " << board_on.p50_open_s << "s vs unskewed "
      << control.p50_open_s << "s";
  std::printf(
      "\nexpect: board=off fails its shed opens (rejects > 0, failed > 0); "
      "board=on\nlands every open via sibling retries with 0 failures, every "
      "shard's granted\npeak <= pool, and p50 within 2x of the uniform "
      "control.\n");

  report.WriteMerged();
  std::printf(
      "\nexpect: admitted ~= 16 x servers; open latency and cold per-open "
      "message cost\nroughly flat => no central bottleneck (cold m/open "
      "includes background polling\ntraffic, so it overstates the true cost "
      "uniformly). With the resolution cache,\nsurf m/open drops and "
      "surf-phase NS resolves collapse to ~0: re-opens skip the\n"
      "name-service round trip.\n");
  return 0;
}
