// Experiment E2 — Linear scalability (paper Sections 1, 9.6).
//
// "Scalable services in our system are typically implemented with a replica
//  running on each server... To expand the system's capacity, one acquires a
//  new server to run an additional replica for each service... system
//  capacity grows linearly with the number of servers."
//
// Harness: clusters of 1..8 servers, with settops in proportion (one
// neighborhood per server). Every settop boots and opens a movie; each MDS
// replica admits up to capacity/bitrate streams. We report:
//   - admitted concurrent streams (should be ~16 x servers, the per-server
//    disk/NIC limit, since demand always exceeds capacity);
//   - movie-open latency (should stay flat: opens touch only the local NS
//    replica, one cmgr, one trunk, one MDS);
//   - RPC messages per successful open (flat = no hidden central hot spot).
//
// A second "channel surf" phase has every admitted settop close its movie and
// open another one, twice. Re-opens re-resolve the MMS, so this phase
// measures the client-side resolution cache: with the cache each surf open
// skips the name-service round trip entirely. Each cluster size runs twice —
// cache detached, then cache attached — on identical workloads, and the
// surf-phase msgs/open and NS resolve counts are reported for both.

#include <cstdio>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "src/common/rand.h"
#include "src/media/factories.h"
#include "src/settop/app_manager.h"
#include "src/settop/vod_app.h"
#include "src/svc/harness.h"

namespace itv {
namespace {

constexpr size_t kSurfRounds = 2;

struct RunResult {
  size_t servers = 0;
  size_t settops = 0;
  size_t admitted = 0;
  size_t rejected = 0;
  double mean_open_s = 0;
  double p50_open_s = 0;
  double p99_open_s = 0;
  double cold_msgs_per_open = 0;
  // Channel-surf phase: every admitted settop closes and re-opens, twice.
  size_t surf_opens = 0;
  double surf_msgs_per_open = 0;
  uint64_t surf_ns_resolves = 0;
  uint64_t cache_hits = 0;
};

RunResult RunCluster(size_t servers, size_t settops_per_server,
                     bool use_cache) {
  svc::HarnessOptions opts;
  opts.server_count = servers;
  opts.neighborhood_count = static_cast<uint8_t>(servers);
  svc::ClusterHarness harness(opts);

  media::MediaDeployment deploy;
  // A catalog big enough that placement spreads; every title on 2 servers.
  deploy.movies = media::SyntheticCatalog(
      /*count=*/40, servers, /*replicas=*/std::min<size_t>(2, servers));
  deploy.mds_capacity_bps = 48'000'000;      // 16 x 3 Mb/s streams per server.
  deploy.trunk_capacity_bps = 200'000'000;
  media::RegisterMediaServices(harness, deploy);
  harness.Boot();
  harness.cluster().RunFor(Duration::Seconds(12));

  // Spawn settops; each opens a uniformly chosen movie via the MMS directly
  // (bypassing the boot/download path to isolate the open pipeline). Uniform
  // popularity keeps demand spreadable; with a strongly Zipf catalog the
  // limit becomes movie placement, not infrastructure.
  Rng rng(1234 + servers);
  size_t total = servers * settops_per_server;
  struct Viewer {
    sim::Process* process;
    naming::NameClient nc;
    uint32_t settop_host = 0;
    Future<media::MmsTicket> open;
    Time started;
  };
  std::vector<Viewer> viewers;
  viewers.reserve(total);

  RunResult result;
  result.servers = servers;
  result.settops = total;

  uint64_t msgs_before = harness.metrics().Get("net.msg.total");
  Histogram open_latency;

  for (size_t i = 0; i < total; ++i) {
    uint8_t nb = static_cast<uint8_t>(1 + (i % servers));
    sim::Node& settop = harness.AddSettop(nb);
    sim::Process& p = settop.Spawn("viewer");
    naming::NameClient nc = harness.ClientFor(p);
    if (!use_cache) {
      nc.set_resolution_cache(nullptr);  // Baseline: every resolve hits NS.
    }
    std::string title = "movie-" + std::to_string(rng.Below(40));

    Viewer viewer{&p, nc, settop.host(), {}, harness.cluster().Now()};
    // Resolve then open; the latency histogram records resolve+open time for
    // the opens that are admitted.
    Promise<media::MmsTicket> done;
    viewer.open = done.future();
    sim::Cluster* cluster = &harness.cluster();
    Time started = viewer.started;
    nc.Resolve(std::string(media::kMmsName))
        .OnReady([&p, title, done, cluster, started, &open_latency,
                  settop_host = settop.host()](
                     const Result<wire::ObjectRef>& mms) mutable {
          if (!mms.ok()) {
            done.Set(mms.status());
            return;
          }
          media::MmsProxy proxy(p.runtime(), *mms);
          proxy.Open(title, settop_host, wire::ObjectRef{})
              .OnReady([done, cluster, started, &open_latency](
                           const Result<media::MmsTicket>& t) mutable {
                if (t.ok()) {
                  open_latency.Record((cluster->Now() - started).seconds());
                }
                done.Set(t);
              });
        });
    viewers.push_back(std::move(viewer));
    // Pace arrivals so MMS load snapshots refresh (5 s cadence).
    harness.cluster().RunFor(Duration::Millis(300));
  }
  harness.cluster().RunFor(Duration::Seconds(10));

  for (Viewer& viewer : viewers) {
    if (viewer.open.is_ready() && viewer.open.result().ok()) {
      ++result.admitted;
    } else {
      ++result.rejected;
    }
  }
  uint64_t cold_msgs_after = harness.metrics().Get("net.msg.total");
  result.mean_open_s = open_latency.Mean();
  result.p50_open_s = open_latency.Percentile(50);
  result.p99_open_s = open_latency.Percentile(99);
  result.cold_msgs_per_open =
      result.admitted == 0
          ? 0
          : static_cast<double>(cold_msgs_after - msgs_before) /
                static_cast<double>(result.admitted);

  // --- Channel-surf phase: close, re-resolve the MMS, open another movie.
  uint64_t surf_msgs_before = harness.metrics().Get("net.msg.total");
  uint64_t surf_resolves_before = harness.metrics().Get("ns.resolve");
  for (size_t round = 0; round < kSurfRounds; ++round) {
    for (Viewer& viewer : viewers) {
      if (!viewer.open.is_ready() || !viewer.open.result().ok()) {
        continue;  // Never admitted; stays out.
      }
      media::MmsTicket held = *viewer.open.result();
      std::string title = "movie-" + std::to_string(rng.Below(40));
      Promise<media::MmsTicket> done;
      viewer.open = done.future();
      sim::Process* p = viewer.process;
      uint32_t settop_host = viewer.settop_host;
      naming::NameClient nc = viewer.nc;
      nc.Resolve(std::string(media::kMmsName))
          .OnReady([p, held, title, done, settop_host,
                    nc](const Result<wire::ObjectRef>& mms) mutable {
            if (!mms.ok()) {
              done.Set(mms.status());
              return;
            }
            media::MmsProxy proxy(p->runtime(), *mms);
            proxy.Close(held.movie)
                .OnReady([p, title, done, settop_host, nc](
                             const Result<void>& closed) mutable {
                  if (!closed.ok()) {
                    done.Set(closed.status());
                    return;
                  }
                  // Re-resolve per open, as a settop app would; with the
                  // cache attached this is answered locally.
                  nc.Resolve(std::string(media::kMmsName))
                      .OnReady([p, title, done, settop_host](
                                   const Result<wire::ObjectRef>& mms2) mutable {
                        if (!mms2.ok()) {
                          done.Set(mms2.status());
                          return;
                        }
                        media::MmsProxy proxy2(p->runtime(), *mms2);
                        proxy2.Open(title, settop_host, wire::ObjectRef{})
                            .OnReady(
                                [done](const Result<media::MmsTicket>& t) mutable {
                                  done.Set(t);
                                });
                      });
                });
          });
      harness.cluster().RunFor(Duration::Millis(50));
    }
    harness.cluster().RunFor(Duration::Seconds(5));
    for (Viewer& viewer : viewers) {
      if (viewer.open.is_ready() && viewer.open.result().ok()) {
        ++result.surf_opens;
      }
    }
  }
  uint64_t surf_msgs_after = harness.metrics().Get("net.msg.total");
  result.surf_msgs_per_open =
      result.surf_opens == 0
          ? 0
          : static_cast<double>(surf_msgs_after - surf_msgs_before) /
                static_cast<double>(result.surf_opens);
  result.surf_ns_resolves =
      harness.metrics().Get("ns.resolve") - surf_resolves_before;
  result.cache_hits = harness.metrics().Get("resolve.cache.hit");
  return result;
}

}  // namespace
}  // namespace itv

int main() {
  using namespace itv;
  bench::PrintHeader("E2: capacity scales linearly with servers (paper 9.6)");
  std::printf(
      "demand: 24 settops/server x 3 Mb/s; per-server MDS capacity 48 Mb/s "
      "(16 streams)\nsurf phase: every admitted settop closes + re-opens "
      "twice, re-resolving the MMS\n\n");
  bench::PrintRow({"servers", "cache", "admitted", "open_p50_s", "open_p99_s",
                   "cold_m/open", "surf_m/open", "surf_ns_res", "hits"});
  bench::ReportSection report("bench_scalability");
  for (size_t servers : {1, 2, 4, 8}) {
    RunResult off = RunCluster(servers, /*settops_per_server=*/24,
                               /*use_cache=*/false);
    RunResult on = RunCluster(servers, /*settops_per_server=*/24,
                              /*use_cache=*/true);
    for (const RunResult* r : {&off, &on}) {
      bench::PrintRow(
          {bench::FmtInt(r->servers), r == &on ? "on" : "off",
           bench::FmtInt(r->admitted), bench::Fmt("%.4f", r->p50_open_s),
           bench::Fmt("%.4f", r->p99_open_s),
           bench::Fmt("%.1f", r->cold_msgs_per_open),
           bench::Fmt("%.1f", r->surf_msgs_per_open),
           bench::FmtInt(r->surf_ns_resolves), bench::FmtInt(r->cache_hits)});
    }
    std::string prefix = "servers_" + std::to_string(servers) + "_";
    report.SetInt(prefix + "admitted", on.admitted);
    report.Set(prefix + "open_p50_s", on.p50_open_s);
    report.Set(prefix + "open_p99_s", on.p99_open_s);
    report.Set(prefix + "cold_msgs_per_open", on.cold_msgs_per_open);
    report.Set(prefix + "surf_msgs_per_open_nocache", off.surf_msgs_per_open);
    report.Set(prefix + "surf_msgs_per_open_cache", on.surf_msgs_per_open);
    report.SetInt(prefix + "surf_ns_resolves_nocache", off.surf_ns_resolves);
    report.SetInt(prefix + "surf_ns_resolves_cache", on.surf_ns_resolves);
    report.SetInt(prefix + "resolve_cache_hits", on.cache_hits);
  }
  report.WriteMerged();
  std::printf(
      "\nexpect: admitted ~= 16 x servers; open latency and cold per-open "
      "message cost\nroughly flat => no central bottleneck (cold m/open "
      "includes background polling\ntraffic, so it overstates the true cost "
      "uniformly). With the resolution cache,\nsurf m/open drops and "
      "surf-phase NS resolves collapse to ~0: re-opens skip the\n"
      "name-service round trip.\n");
  return 0;
}
