// Experiment E2 — Linear scalability (paper Sections 1, 9.6).
//
// "Scalable services in our system are typically implemented with a replica
//  running on each server... To expand the system's capacity, one acquires a
//  new server to run an additional replica for each service... system
//  capacity grows linearly with the number of servers."
//
// Harness: clusters of 1..8 servers, with settops in proportion (one
// neighborhood per server). Every settop boots and opens a movie; each MDS
// replica admits up to capacity/bitrate streams. We report:
//   - admitted concurrent streams (should be ~16 x servers, the per-server
//    disk/NIC limit, since demand always exceeds capacity);
//   - movie-open latency (should stay flat: opens touch only the local NS
//    replica, one cmgr, one trunk, one MDS);
//   - RPC messages per successful open (flat = no hidden central hot spot).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/rand.h"
#include "src/media/factories.h"
#include "src/settop/app_manager.h"
#include "src/settop/vod_app.h"
#include "src/svc/harness.h"

namespace itv {
namespace {

struct RunResult {
  size_t servers = 0;
  size_t settops = 0;
  size_t admitted = 0;
  size_t rejected = 0;
  double mean_open_s = 0;
  double p50_open_s = 0;
  double p99_open_s = 0;
  double msgs_per_open = 0;
};

RunResult RunCluster(size_t servers, size_t settops_per_server) {
  svc::HarnessOptions opts;
  opts.server_count = servers;
  opts.neighborhood_count = static_cast<uint8_t>(servers);
  svc::ClusterHarness harness(opts);

  media::MediaDeployment deploy;
  // A catalog big enough that placement spreads; every title on 2 servers.
  deploy.movies = media::SyntheticCatalog(
      /*count=*/40, servers, /*replicas=*/std::min<size_t>(2, servers));
  deploy.mds_capacity_bps = 48'000'000;      // 16 x 3 Mb/s streams per server.
  deploy.trunk_capacity_bps = 200'000'000;
  media::RegisterMediaServices(harness, deploy);
  harness.Boot();
  harness.cluster().RunFor(Duration::Seconds(12));

  // Spawn settops; each opens a uniformly chosen movie via the MMS directly
  // (bypassing the boot/download path to isolate the open pipeline). Uniform
  // popularity keeps demand spreadable; with a strongly Zipf catalog the
  // limit becomes movie placement, not infrastructure.
  Rng rng(1234 + servers);
  size_t total = servers * settops_per_server;
  struct Viewer {
    sim::Process* process;
    Future<media::MmsTicket> open;
    Time started;
  };
  std::vector<Viewer> viewers;
  viewers.reserve(total);

  // One shared resolve of the MMS per settop process.
  RunResult result;
  result.servers = servers;
  result.settops = total;

  uint64_t msgs_before = harness.metrics().Get("net.msg.total");
  Histogram open_latency;

  for (size_t i = 0; i < total; ++i) {
    uint8_t nb = static_cast<uint8_t>(1 + (i % servers));
    sim::Node& settop = harness.AddSettop(nb);
    sim::Process& p = settop.Spawn("viewer");
    naming::NameClient nc = harness.ClientFor(p);
    std::string title = "movie-" + std::to_string(rng.Below(40));

    Viewer viewer;
    viewer.process = &p;
    viewer.started = harness.cluster().Now();
    // Resolve then open; the latency histogram records resolve+open time for
    // the opens that are admitted.
    Promise<media::MmsTicket> done;
    viewer.open = done.future();
    sim::Cluster* cluster = &harness.cluster();
    Time started = viewer.started;
    nc.Resolve(std::string(media::kMmsName))
        .OnReady([&p, title, done, cluster, started, &open_latency,
                  settop_host = settop.host()](
                     const Result<wire::ObjectRef>& mms) mutable {
          if (!mms.ok()) {
            done.Set(mms.status());
            return;
          }
          media::MmsProxy proxy(p.runtime(), *mms);
          proxy.Open(title, settop_host, wire::ObjectRef{})
              .OnReady([done, cluster, started, &open_latency](
                           const Result<media::MmsTicket>& t) mutable {
                if (t.ok()) {
                  open_latency.Record((cluster->Now() - started).seconds());
                }
                done.Set(t);
              });
        });
    viewers.push_back(std::move(viewer));
    // Pace arrivals so MMS load snapshots refresh (5 s cadence).
    harness.cluster().RunFor(Duration::Millis(300));
  }
  harness.cluster().RunFor(Duration::Seconds(10));

  for (Viewer& viewer : viewers) {
    if (!viewer.open.is_ready()) {
      ++result.rejected;
      continue;
    }
    if (viewer.open.result().ok()) {
      ++result.admitted;
    } else {
      ++result.rejected;
    }
  }
  uint64_t msgs_after = harness.metrics().Get("net.msg.total");
  result.mean_open_s = open_latency.Mean();
  result.p50_open_s = open_latency.Percentile(50);
  result.p99_open_s = open_latency.Percentile(99);
  result.msgs_per_open =
      result.admitted == 0
          ? 0
          : static_cast<double>(msgs_after - msgs_before) /
                static_cast<double>(result.admitted);
  return result;
}

}  // namespace
}  // namespace itv

int main() {
  using namespace itv;
  bench::PrintHeader("E2: capacity scales linearly with servers (paper 9.6)");
  std::printf(
      "demand: 24 settops/server x 3 Mb/s; per-server MDS capacity 48 Mb/s "
      "(16 streams)\n\n");
  bench::PrintRow({"servers", "settops", "admitted", "streams/srv",
                   "open_p50_s", "open_p99_s", "msgs/open*"});
  for (size_t servers : {1, 2, 4, 8}) {
    RunResult r = RunCluster(servers, /*settops_per_server=*/24);
    bench::PrintRow({bench::FmtInt(r.servers), bench::FmtInt(r.settops),
                     bench::FmtInt(r.admitted),
                     bench::Fmt("%.1f", static_cast<double>(r.admitted) /
                                            static_cast<double>(r.servers)),
                     bench::Fmt("%.4f", r.p50_open_s),
                     bench::Fmt("%.4f", r.p99_open_s),
                     bench::Fmt("%.0f", r.msgs_per_open)});
  }
  std::printf(
      "\nexpect: admitted ~= 16 x servers (flat streams/srv); open latency "
      "and per-open\nmessage cost roughly flat => no central bottleneck "
      "(*includes background polling traffic\nduring the run, so it "
      "overstates the true per-open cost uniformly).\n");
  return 0;
}
