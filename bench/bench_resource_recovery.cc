// Experiment E4 — Resource-recovery design alternatives (paper Section 7.1).
//
// The paper weighed four designs and picked the RAS:
//   1. Duration time-outs: free, but "too conservative... resource leakage
//      began to make the system unusable" — resources leak until the timer.
//   2. Aggressive leases: bounded leakage, but "with thousands of clients,
//      each holding several resources, this approach could consume too much
//      network bandwidth and server CPU cycles".
//   3/4. Failure detection (per-service tracking vs the shared RAS): the RAS
//      "requires only a small number of network messages".
//
// This bench reproduces the comparison: for N settop clients each holding R
// resources, it computes the steady-state message rate and the worst-case
// reclamation delay of each scheme. Lease renewals are modelled analytically
// (N*R/interval, one message each). The RAS column is *measured* from the
// real stack: N settops heartbeating the Settop Manager + RAS peer polls +
// one MMS-style audit poll — note it does not grow with R at all.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/ras/audit_client.h"
#include "src/rpc/binding_table.h"
#include "src/svc/harness.h"
#include "src/svc/settop_manager.h"

namespace itv {
namespace {

// Measures the whole-cluster message rate attributable to liveness tracking
// with N settops, independent of resources held.
double MeasureRasMessagesPerSecond(size_t settops, size_t servers) {
  svc::HarnessOptions opts;
  opts.server_count = servers;
  opts.neighborhood_count = static_cast<uint8_t>(servers);
  opts.start_csc = true;
  svc::ClusterHarness harness(opts);
  harness.Boot();
  harness.cluster().RunFor(Duration::Seconds(5));

  // One audit client playing the MMS's role: it watches every settop through
  // the local RAS with the paper's 10 s polling.
  sim::Process& mms_like = harness.SpawnProcessOn(0, "auditor");
  auto* audit = mms_like.Emplace<ras::AuditClient>(
      mms_like.runtime(), mms_like.executor(), ras::RasRefAt(mms_like.host()));

  // Settop heartbeat senders (the AppManager's 5 s loop, distilled).
  for (size_t i = 0; i < settops; ++i) {
    uint8_t nb = static_cast<uint8_t>(1 + (i % servers));
    sim::Node& settop = harness.AddSettop(nb);
    sim::Process& p = settop.Spawn("hb");
    auto* bindings = p.Emplace<rpc::BindingTable>(
        p.runtime(), harness.ClientFor(p).PathResolverFn());
    auto settopmgr =
        bindings->Bind<svc::SettopManagerProxy>(svc::kSettopManagerName);
    auto* timer = p.Emplace<PeriodicTimer>();
    uint32_t host = settop.host();
    timer->Start(p.executor(), Duration::Seconds(5), [settopmgr, host] {
      settopmgr.Call<void>(
          [host](const svc::SettopManagerProxy& mgr) {
            return mgr.Heartbeat(host);
          },
          [](Result<void>) {});
    });
    audit->Watch(ras::EntityId::Settop(host), [](const ras::EntityId&) {});
  }
  harness.cluster().RunFor(Duration::Seconds(20));  // Warm-up.

  uint64_t before = harness.metrics().Get("net.msg.total");
  constexpr double kWindowS = 60.0;
  harness.cluster().RunFor(Duration::Seconds(kWindowS));
  uint64_t after = harness.metrics().Get("net.msg.total");
  return static_cast<double>(after - before) / kWindowS;
}

}  // namespace
}  // namespace itv

int main() {
  using namespace itv;
  bench::PrintHeader(
      "E4: resource-recovery alternatives — message cost vs reclaim delay "
      "(paper 7.1)");
  std::printf(
      "N clients x R resources. lease interval 30 s; duration time-out 2 h; "
      "RAS = measured\nfrom the real stack (4 servers; settop heartbeats 5 s "
      "+ RAS peer polls 5 s + audit 10 s).\n\n");
  bench::PrintRow({"scheme", "N", "R", "msgs/sec", "worst_reclaim_s"});

  constexpr double kLeaseIntervalS = 30.0;
  constexpr double kDurationTimeoutS = 7200.0;
  const size_t kServers = 4;

  for (size_t n : {200, 1000, 4000}) {
    for (size_t r : {1, 4, 8}) {
      double lease_msgs =
          static_cast<double>(n * r) / kLeaseIntervalS * 2.0;  // req+reply
      bench::PrintRow({"duration-timeout", bench::FmtInt(n), bench::FmtInt(r),
                       "0", bench::Fmt("%.0f", kDurationTimeoutS)});
      bench::PrintRow({"lease-renewal", bench::FmtInt(n), bench::FmtInt(r),
                       bench::Fmt("%.0f", lease_msgs),
                       bench::Fmt("%.0f", kLeaseIntervalS)});
    }
    double ras_msgs = MeasureRasMessagesPerSecond(n, kServers);
    // Reclaim chain: settop-manager timeout 15 + RAS poll 5 + audit 10.
    bench::PrintRow({"RAS (measured)", bench::FmtInt(n), "any",
                     bench::Fmt("%.0f", ras_msgs), "30"});
    std::printf("\n");
  }
  std::printf(
      "expect: lease cost grows with N*R; RAS cost grows only with N (the "
      "5 s heartbeat)\nand is independent of R — the paper's scaling "
      "argument. Both failure-detection\nschemes bound reclamation at tens "
      "of seconds; duration time-outs leak for hours.\n");
  return 0;
}
