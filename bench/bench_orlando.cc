// The Orlando deployment target, end to end (paper Sections 1, 3, 9.6):
//
//   "For the Orlando trial, the requirement was to support 1,000 concurrent
//    users from a community of 4,000."
//
// Harness: 16 servers / 16 neighborhoods sized so aggregate MDS capacity
// covers 1,056 concurrent 3 Mb/s streams. 4,000 settops register and
// heartbeat the Settop Manager (the community); 1,000 of them run the full
// VOD pipeline (MMS -> cmgr -> MDS -> movie object -> CBR delivery to a
// MediaSink). Reported: admitted streams, open-latency distribution,
// steady-state message load, and — because availability is the point — what
// happens when one of the 16 servers crashes mid-show.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/rand.h"
#include "src/media/factories.h"
#include "src/rpc/binding_table.h"
#include "src/settop/vod_app.h"
#include "src/svc/harness.h"
#include "src/svc/settop_manager.h"

namespace itv {
namespace {

constexpr size_t kServers = 16;
constexpr size_t kCommunity = 4000;
constexpr size_t kViewers = 1000;

struct SettopSim {
  sim::Node* node = nullptr;
  sim::Process* process = nullptr;
  settop::VodApp* vod = nullptr;  // Only for the viewing population.
};

}  // namespace
}  // namespace itv

int main() {
  using namespace itv;
  bench::PrintHeader(
      "Orlando scale: 1,000 concurrent viewers from a community of 4,000");

  svc::HarnessOptions opts;
  opts.server_count = kServers;
  opts.neighborhood_count = kServers;
  svc::ClusterHarness harness(opts);
  sim::Cluster& cluster = harness.cluster();

  media::MediaDeployment deploy;
  deploy.movies =
      media::SyntheticCatalog(/*count=*/100, kServers, /*replicas=*/2);
  deploy.mds_capacity_bps = 200'000'000;   // 66 streams x 3 Mb/s per server.
  deploy.trunk_capacity_bps = 400'000'000;
  deploy.mds_chunk_period = Duration::Seconds(1);
  media::RegisterMediaServices(harness, deploy);

  std::printf("booting %zu servers...\n", kServers);
  harness.Boot();
  cluster.RunFor(Duration::Seconds(15));

  // The community: 4,000 settops heartbeating the Settop Manager.
  std::printf("registering a community of %zu settops...\n", kCommunity);
  Rng rng(1995);
  std::vector<SettopSim> community;
  community.reserve(kCommunity);
  for (size_t i = 0; i < kCommunity; ++i) {
    SettopSim s;
    s.node = &harness.AddSettop(static_cast<uint8_t>(1 + (i % kServers)));
    s.process = &s.node->Spawn("settop");
    auto* bindings = s.process->Emplace<rpc::BindingTable>(
        s.process->runtime(), harness.ClientFor(*s.process).PathResolverFn());
    auto settopmgr =
        bindings->Bind<svc::SettopManagerProxy>(svc::kSettopManagerName);
    auto* timer = s.process->Emplace<PeriodicTimer>();
    uint32_t host = s.node->host();
    timer->Start(s.process->executor(), Duration::Seconds(5),
                 [settopmgr, host] {
                   settopmgr.Call<void>(
                       [host](const svc::SettopManagerProxy& mgr) {
                         return mgr.Heartbeat(host);
                       },
                       [](Result<void>) {});
                 });
    community.push_back(s);
  }
  cluster.RunFor(Duration::Seconds(10));

  // The viewers: the first 1,000 settops start movies over ~100 s.
  std::printf("starting %zu concurrent movie sessions...\n", kViewers);
  Histogram open_latency;
  size_t play_failures = 0;
  for (size_t i = 0; i < kViewers; ++i) {
    SettopSim& s = community[i];
    settop::VodApp::Options vod_opts;
    vod_opts.mms_rebind.max_attempts = 30;
    vod_opts.mms_rebind.initial_backoff = Duration::Millis(500);
    vod_opts.mms_rebind.backoff_multiplier = 1.2;
    vod_opts.data_gap_timeout = Duration::Seconds(4);
    s.vod = s.process->Emplace<settop::VodApp>(
        s.process->runtime(), s.process->executor(),
        harness.ClientFor(*s.process), vod_opts, &harness.metrics());
    Time t0 = cluster.Now();
    sim::Cluster* cl = &cluster;
    bool* failures_flag = nullptr;
    (void)failures_flag;
    s.vod->PlayMovie("movie-" + std::to_string(rng.Below(100)),
                     [&play_failures](Status st) {
                       if (!st.ok()) {
                         ++play_failures;
                       }
                     });
    cluster.RunFor(Duration::Millis(100));
    if (s.vod->playing() || s.vod->session_id() != 0) {
      open_latency.Record((cl->Now() - t0).seconds());
    }
  }
  cluster.RunFor(Duration::Seconds(15));

  size_t playing = 0;
  for (size_t i = 0; i < kViewers; ++i) {
    playing += community[i].vod->playing();
  }
  std::printf("\n");
  bench::PrintRow({"metric", "value", "paper target"});
  bench::PrintRow({"community", bench::FmtInt(kCommunity), "4000 settops"});
  bench::PrintRow({"concurrent streams", bench::FmtInt(playing), "1000"});
  bench::PrintRow({"open p50 (s)", bench::Fmt("%.3f", open_latency.Percentile(50)),
                   "< 0.5s perceived"});
  bench::PrintRow({"open p99 (s)", bench::Fmt("%.3f", open_latency.Percentile(99)),
                   ""});

  // Steady-state message load with everything running.
  uint64_t before = harness.metrics().Get("net.msg.total");
  cluster.RunFor(Duration::Seconds(30));
  double msgs_per_s =
      static_cast<double>(harness.metrics().Get("net.msg.total") - before) / 30.0;
  bench::PrintRow({"cluster msgs/s", bench::Fmt("%.0f", msgs_per_s),
                   "(heartbeats+streams)"});

  // Availability at scale: crash one of the 16 servers mid-show.
  std::printf("\ncrashing server 5 (its ~1/16 of streams must re-home)...\n");
  size_t playing_before = playing;
  harness.server(4).Crash();
  cluster.RunFor(Duration::Seconds(90));
  size_t playing_after = 0;
  uint32_t crashed_host = harness.HostOf(4);
  size_t on_crashed = 0;
  for (size_t i = 0; i < kViewers; ++i) {
    playing_after += community[i].vod->playing();
    if (community[i].vod->playing()) {
      on_crashed += community[i].vod->mds_host() == crashed_host;
    }
  }
  bench::PrintRow({"playing before", bench::FmtInt(playing_before), ""});
  bench::PrintRow({"playing after crash", bench::FmtInt(playing_after), ""});
  // A nonzero trickle here is a viewer whose reopen is still in its backoff
  // loop (its last successful source was the dead server); nobody receives
  // data from the crashed machine.
  bench::PrintRow({"mid-retry (stale source)", bench::FmtInt(on_crashed), "~0"});
  bench::PrintRow({"stream failures seen",
                   bench::FmtInt(harness.metrics().Get("vod.stream_failure")),
                   "~1000/16 = 62"});
  bench::PrintRow({"reopens", bench::FmtInt(harness.metrics().Get("vod.reopen")),
                   ""});
  std::printf(
      "\nthe ~62 interrupted viewers detect the stream gap, close, and reopen "
      "via the MMS\n(paper 3.5.2). How many re-admit is a *capacity* question, "
      "not an availability one:\neach title lives on exactly 2 servers, so an "
      "orphaned stream can only re-home onto\nits title's surviving replica, "
      "which was already running near its admission limit —\nthe paper's own "
      "caveat that 'unsuspected bottlenecks' (here: placement) govern\n"
      "full-scale behaviour (9.6). No viewer is left attached to the dead "
      "server, and the\nMMS/cmgr/RAS reclaim every orphaned allocation.\n");
  return 0;
}
