// Ablations of two design choices the reproduction makes explicit:
//
// A. Dead-implementor detection: the object exchange NACKs requests to a
//    vanished process ("the client will detect this on the next attempt to
//    use the object reference", Section 3.2.1), versus relying on RPC
//    timeouts alone (what a crashed *machine* gives you). Measures the
//    client-visible recovery latency of an invoke-and-rebind after each kind
//    of failure — the NACK path is what makes process restarts "invisible"
//    (Section 9.5).
//
// B. Selector policy for per-server services (paper Section 5.1): the
//    by-caller-host selector keeps lookups local; round-robin or first
//    scatter callers across machines. Measures the fraction of svc/ras
//    resolutions that land on the caller's own server.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/naming/name_client.h"
#include "src/svc/harness.h"
#include "src/svc/settop_manager.h"

namespace itv {
namespace {

// --- Ablation A -----------------------------------------------------------------

struct RecoveryMeasurement {
  double first_error_s = 0;  // How fast a stale-reference call fails.
  double recovery_s = 0;     // Until a call succeeds against the backup.
};

RecoveryMeasurement MeasureRecoveryLatency(bool crash_whole_server) {
  svc::HarnessOptions opts;
  opts.server_count = 3;
  opts.start_csc = false;
  opts.ras.peer_failures_to_dead = 1;
  svc::ClusterHarness harness(opts);
  harness.Boot();
  sim::Cluster& cluster = harness.cluster();

  svc::ServiceLifecycle::Options lc_opts;
  lc_opts.binder.retry_interval = Duration::Seconds(2);
  auto spawn_replica = [&](size_t index) {
    sim::Process& p = harness.SpawnProcessOn(index, "target");
    auto* skeleton = p.Emplace<svc::SettopManagerService>(p.executor());
    wire::ObjectRef ref = p.runtime().Export(skeleton);
    auto* lifecycle = p.Emplace<svc::ServiceLifecycle>(
        p, harness.ClientFor(p), "svc/target", ref, lc_opts,
        &harness.metrics());
    svc::ServiceLifecycle::Hooks hooks;
    hooks.ready_objects = {ref};
    lifecycle->Start(std::move(hooks));
  };
  spawn_replica(1);
  cluster.RunFor(Duration::Seconds(2));
  spawn_replica(2);
  cluster.RunFor(Duration::Seconds(4));

  // Client with a warm cached reference.
  sim::Process& client = harness.SpawnProcessOn(0, "client");
  rpc::Rebinder::Options rb;
  rb.max_attempts = 60;
  rb.initial_backoff = Duration::Millis(250);
  rb.backoff_multiplier = 1.0;
  rpc::Rebinder rebinder(client.executor(),
                         harness.ClientFor(client).ResolveFnFor("svc/target"), rb);
  auto call_once = [&]() -> Duration {
    Time t0 = cluster.Now();
    Time t1 = t0;
    bool done = false;
    rebinder.Call<std::vector<uint8_t>>(
        [&](const wire::ObjectRef& ref) {
          return svc::SettopManagerProxy(client.runtime(), ref)
              .GetStatus({client.host()});
        },
        [&](Result<std::vector<uint8_t>> r) {
          done = r.ok();
          t1 = cluster.Now();
        });
    for (int i = 0; i < 2000 && !done; ++i) {
      cluster.RunFor(Duration::Millis(50));
    }
    return done ? (t1 - t0) : Duration::Infinite();
  };
  (void)call_once();  // Warm the cache.
  wire::ObjectRef stale = rebinder.cached_ref().value();

  if (crash_whole_server) {
    harness.server(1).Crash();
  } else {
    sim::Process* target = harness.server(1).FindProcessByName("target");
    harness.server(1).Kill(target->pid());
  }
  cluster.RunFor(Duration::Millis(100));

  // How quickly does a call on the stale reference FAIL? NACK: one network
  // round trip. Crashed server: the full RPC timeout.
  RecoveryMeasurement m;
  {
    Time t0 = cluster.Now();
    Time t1 = t0;
    bool failed = false;
    svc::SettopManagerProxy proxy(client.runtime(), stale);
    proxy.GetStatus({client.host()})
        .OnReady([&](const Result<std::vector<uint8_t>>& r) {
          failed = !r.ok();
          t1 = cluster.Now();
        });
    for (int i = 0; i < 200 && !failed; ++i) {
      cluster.RunFor(Duration::Millis(50));
    }
    m.first_error_s = (t1 - t0).seconds();
  }
  m.recovery_s = call_once().seconds();
  return m;
}

// --- Ablation B -----------------------------------------------------------------

double MeasureLocalityFraction(naming::BuiltinSelector policy) {
  svc::HarnessOptions opts;
  opts.server_count = 4;
  opts.start_csc = false;
  svc::ClusterHarness harness(opts);
  harness.Boot();
  sim::Cluster& cluster = harness.cluster();

  // Swap the svc/ras selector policy.
  sim::Process& admin = harness.SpawnProcessOn(0, "admin");
  auto swap = harness.ClientFor(admin).SetSelector("svc/ras", policy);
  (void)bench::WaitOn(cluster, swap);
  cluster.RunFor(Duration::Seconds(3));

  int local = 0, total = 0;
  for (size_t server = 0; server < 4; ++server) {
    for (int i = 0; i < 25; ++i) {
      sim::Process& p = harness.SpawnProcessOn(
          server, "probe" + std::to_string(server) + "-" + std::to_string(i));
      auto r = bench::WaitOn(cluster, harness.ClientFor(p).Resolve("svc/ras"),
                             Duration::Seconds(2));
      if (r.ok()) {
        ++total;
        local += r->endpoint.host == p.host();
      }
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(local) / total;
}

}  // namespace
}  // namespace itv

int main() {
  using namespace itv;
  bench::PrintHeader("Ablation A: NACK detection vs timeout-only recovery");
  std::printf(
      "a client with a cached reference calls right after the failure; "
      "latency until the\ncall succeeds against the backup (bind retry 2 s, "
      "audit 10 s, ras poll 5 s):\n\n");
  bench::PrintRow({"failure", "detection", "first_error_s", "recovery_s"});
  RecoveryMeasurement process_kill =
      MeasureRecoveryLatency(/*crash_whole_server=*/false);
  RecoveryMeasurement server_crash =
      MeasureRecoveryLatency(/*crash_whole_server=*/true);
  bench::PrintRow({"process kill", "NACK",
                   bench::Fmt("%.4f", process_kill.first_error_s),
                   bench::Fmt("%.2f", process_kill.recovery_s)});
  bench::PrintRow({"server crash", "RPC timeout",
                   bench::Fmt("%.4f", server_crash.first_error_s),
                   bench::Fmt("%.2f", server_crash.recovery_s)});
  std::printf(
      "\nexpect: the NACK fails a stale call in ~1 ms (one round trip); the "
      "crashed server\nneeds the full 2 s RPC timeout per attempt. End-to-end "
      "recovery is dominated by the\naudit/bind-retry cadence in both cases "
      "(E1), but every client attempt in between is\n2000x cheaper with "
      "NACKs — why process restarts felt invisible (Section 9.5).\n");

  bench::PrintHeader(
      "Ablation B: selector policy for per-server services (svc/ras)");
  bench::PrintRow({"selector", "local_fraction"});
  struct Policy {
    const char* name;
    naming::BuiltinSelector policy;
  };
  const Policy policies[] = {
      {"by-caller-host", naming::BuiltinSelector::kByCallerHost},
      {"first", naming::BuiltinSelector::kFirst},
      {"round-robin", naming::BuiltinSelector::kRoundRobin},
      {"randomish", naming::BuiltinSelector::kRandomish},
  };
  for (const Policy& p : policies) {
    bench::PrintRow({p.name, bench::Fmt("%.2f", MeasureLocalityFraction(p.policy))});
  }
  std::printf(
      "\nexpect: by-caller-host keeps 100%% of RAS traffic on the caller's "
      "server (the paper's\nchoice: 'services contact the RAS on their local "
      "machine'); the alternatives scatter\nit, turning local queries into "
      "cross-server RPCs.\n");
  return 0;
}
