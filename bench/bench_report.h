// Machine-readable benchmark report sections.
//
// Each bench binary owns one top-level section of a shared JSON file
// (BENCH_PR10.json by default, overridable via ITV_BENCH_REPORT). A binary
// builds its ReportSection, then WriteMerged() reads the existing file,
// replaces only that binary's section, and writes the merged object back —
// so CI can run the bench binaries in any order and end up with one
// artifact. Parsing reuses json::SplitTopLevelObject; no JSON library.

#ifndef BENCH_BENCH_REPORT_H_
#define BENCH_BENCH_REPORT_H_

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/json.h"

namespace itv::bench {

inline std::string ReportPath() {
  const char* env = std::getenv("ITV_BENCH_REPORT");
  return env != nullptr ? std::string(env) : std::string("BENCH_PR10.json");
}

class ReportSection {
 public:
  explicit ReportSection(std::string name) : name_(std::move(name)) {}

  void Set(const std::string& key, double value) {
    char buf[64];
    if (!std::isfinite(value)) {
      std::snprintf(buf, sizeof(buf), "0");
    } else {
      std::snprintf(buf, sizeof(buf), "%.6g", value);
    }
    Put(key, buf);
  }

  void SetInt(const std::string& key, uint64_t value) {
    Put(key, std::to_string(value));
  }

  void SetText(const std::string& key, const std::string& value) {
    Put(key, "\"" + json::Escape(value) + "\"");
  }

  // Renders this section as a JSON object (insertion order preserved).
  std::string Render() const {
    std::string out = "{";
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += "\n    \"" + json::Escape(entries_[i].first) +
             "\": " + entries_[i].second;
    }
    out += entries_.empty() ? "}" : "\n  }";
    return out;
  }

  // Merges this section into the shared report file. A missing or corrupt
  // existing file starts fresh rather than failing the bench run.
  bool WriteMerged(const std::string& path = ReportPath()) const {
    std::map<std::string, std::string> members;
    std::string existing = ReadWholeFile(path);
    if (!existing.empty()) {
      if (!json::SplitTopLevelObject(existing, &members)) {
        members.clear();
      }
    }
    members[name_] = Render();
    std::string out = "{";
    bool first = true;
    for (const auto& [key, value] : members) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "  \"" + json::Escape(key) + "\": " + value;
    }
    out += "\n}\n";
    if (!json::ValidateSyntax(out)) {
      std::fprintf(stderr, "bench_report: refusing to write invalid JSON\n");
      return false;
    }
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_report: cannot open %s\n", path.c_str());
      return false;
    }
    size_t written = std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    if (written != out.size()) {
      return false;
    }
    std::fprintf(stderr, "[report] wrote section \"%s\" to %s\n", name_.c_str(),
                 path.c_str());
    return true;
  }

 private:
  void Put(const std::string& key, std::string rendered) {
    for (auto& entry : entries_) {
      if (entry.first == key) {
        entry.second = std::move(rendered);
        return;
      }
    }
    entries_.emplace_back(key, std::move(rendered));
  }

  static std::string ReadWholeFile(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return {};
    }
    std::string data;
    char buf[4096];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      data.append(buf, n);
    }
    std::fclose(f);
    return data;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

// Wall-clock ns/op for a closure, self-calibrating to ~100ms of work.
// Used for the report numbers so they exist even when a binary's main
// harness (google-benchmark, cluster sim) reports in other units.
template <typename F>
double MeasureNsPerOp(F&& fn) {
  using Clock = std::chrono::steady_clock;
  uint64_t iters = 1;
  for (;;) {
    auto start = Clock::now();
    for (uint64_t i = 0; i < iters; ++i) {
      fn();
    }
    auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       Clock::now() - start)
                       .count();
    if (elapsed >= 100'000'000 || iters >= (uint64_t{1} << 30)) {
      return static_cast<double>(elapsed) / static_cast<double>(iters);
    }
    uint64_t next = (elapsed <= 0) ? iters * 16
                                   : static_cast<uint64_t>(
                                         iters * (110'000'000.0 /
                                                  static_cast<double>(elapsed)));
    iters = next > iters ? next : iters * 2;
  }
}

}  // namespace itv::bench

#endif  // BENCH_BENCH_REPORT_H_
