// Telemetry dump tool: runs a scripted fail-over chaos scenario with tracing
// enabled, then writes both sides of the cluster's telemetry —
//
//   trace.json    Chrome trace-event document (chrome://tracing, Perfetto)
//   metrics.json  every counter/gauge/histogram (Metrics::DumpJson)
//
// — and self-validates both documents before exiting, so CI can archive them
// as artifacts knowing they load in external viewers. Exit status is nonzero
// if the scenario failed to produce a complete fail-over timeline or either
// document fails validation.
//
// Usage: trace_chaos_dump [trace.json [metrics.json]]

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/trace.h"
#include "src/naming/name_client.h"
#include "src/svc/harness.h"
#include "src/svc/settop_manager.h"

using namespace itv;

namespace {

bool WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
  out.close();
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = argc > 1 ? argv[1] : "trace.json";
  const std::string metrics_path = argc > 2 ? argv[2] : "metrics.json";

  // The paper-default fail-over scenario (Section 9.7): primary/backup pair,
  // 10 s bind retry, 10 s name-service audit, 5 s RAS peer poll; crash the
  // primary's server and let the cluster recover.
  svc::HarnessOptions opts;
  opts.server_count = 3;
  opts.ns.audit_interval = Duration::Seconds(10);
  opts.ras.peer_poll_interval = Duration::Seconds(5);
  opts.ras.peer_failures_to_dead = 1;
  opts.ras.rpc_timeout = Duration::Seconds(1);
  opts.start_csc = false;
  svc::ClusterHarness harness(opts);
  harness.Boot();

  svc::ServiceLifecycle::Options lc_opts;
  lc_opts.binder.retry_interval = Duration::Seconds(10);
  auto spawn_replica = [&](size_t server_index) {
    sim::Process& p = harness.SpawnProcessOn(server_index, "target");
    auto* skeleton = p.Emplace<svc::SettopManagerService>(p.executor());
    wire::ObjectRef ref = p.runtime().Export(skeleton);
    auto* lifecycle = p.Emplace<svc::ServiceLifecycle>(
        p, harness.ClientFor(p), "svc/target", ref, lc_opts,
        &harness.metrics());
    svc::ServiceLifecycle::Hooks hooks;
    hooks.ready_objects = {ref};
    lifecycle->Start(std::move(hooks));
  };
  spawn_replica(1);
  harness.cluster().RunFor(Duration::Seconds(2));
  spawn_replica(2);
  harness.cluster().RunFor(Duration::Seconds(12));

  Time crash_at = harness.cluster().Now();
  std::printf("crashing server 2 at t=%s\n", crash_at.ToString().c_str());
  harness.server(1).Crash();
  harness.cluster().RunFor(Duration::Seconds(45));

  // Reconstruct and report the fail-over decomposition.
  std::vector<trace::TraceEvent> events =
      harness.cluster().trace_buffer().Snapshot();
  trace::FailoverTimeline timeline =
      trace::FailoverTimeline::Reconstruct(events, crash_at, "svc/target");
  std::printf("%s", timeline.Report().c_str());
  if (!timeline.complete()) {
    std::fprintf(stderr,
                 "FAIL: trace buffer did not yield a complete fail-over "
                 "timeline\n");
    return 1;
  }

  // Export + self-validate both telemetry documents.
  std::string error;
  std::string trace_json =
      trace::ChromeTraceJson(harness.cluster().trace_buffer());
  if (!trace::ValidateChromeTrace(trace_json, &error)) {
    std::fprintf(stderr, "FAIL: trace JSON invalid: %s\n", error.c_str());
    return 1;
  }
  std::string metrics_json = harness.metrics().DumpJson();
  if (!json::ValidateSyntax(metrics_json, &error)) {
    std::fprintf(stderr, "FAIL: metrics JSON invalid: %s\n", error.c_str());
    return 1;
  }
  if (!WriteFile(trace_path, trace_json) ||
      !WriteFile(metrics_path, metrics_json)) {
    std::fprintf(stderr, "FAIL: could not write output files\n");
    return 1;
  }

  const trace::TraceBuffer& buffer = harness.cluster().trace_buffer();
  std::printf(
      "wrote %s (%zu events, %llu recorded, %llu dropped) and %s (%zu bytes)\n",
      trace_path.c_str(), buffer.size(),
      static_cast<unsigned long long>(buffer.recorded()),
      static_cast<unsigned long long>(buffer.dropped()), metrics_path.c_str(),
      metrics_json.size());
  return 0;
}
