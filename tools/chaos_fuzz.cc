// Chaos-fuzz driver: runs N seeded fault schedules against a full simulated
// ITV deployment and checks the cluster invariants after each one (see
// src/chaos/fuzz.h). On a failing seed it greedily shrinks the schedule to a
// 1-minimal fault list, then dumps the artifacts a human needs to reproduce:
//
//   chaos_seed_<seed>.schedule.json   the minimized fault schedule
//   chaos_seed_<seed>.trace.json      Chrome trace of the minimized replay
//   chaos_seed_<seed>.metrics.json    metrics dump of the minimized replay
//   chaos_seed_<seed>.report.txt      violations, fault log, fail-over timeline
//
// Every run is a pure function of its seed: `chaos_fuzz --seed S` replays a
// CI failure exactly.
//
// Usage:
//   chaos_fuzz --seeds N [--seed-base B] [--out DIR] [--faults K]
//              [--horizon SECONDS] [--shards N] [--reshard] [--skewed-load]
//              [--no-shrink] [--single-primary] [--quiet]
//   chaos_fuzz --seed S [--out DIR] ...
//
// --shards N deploys MMS and CMgr with N shards each (an mmsd replica on
// every server so shard primaries spread); with --single-primary the
// invariant then checks exactly-one-primary PER SHARD.
//
// --reshard deploys MMS with 4 shards and publishes a successor map
// mid-horizon — growing to 8 shards on even seeds, shrinking to 2 on odd —
// so the fault schedule lands before, during, and after the live cutover.
// Each run then also checks reshard-convergence (successor map won, every
// session in exactly one shard primary's table) and single-primary per
// shard. Implies --single-primary.
//
// --skewed-load deploys MMS with 4 shards and 16 viewers, ~80% of them on
// settop hosts that hash to shard 0, so the hot shard's admission pool runs
// dry while its siblings idle. Viewers retry shed opens against the
// least-loaded sibling via the load board (which joins the kill list), and
// each run additionally checks admission-sound: no shard ever granted past
// its pool, and no viewer stays shed while a sibling has headroom.
//
// Exit status: 0 if every seed passed, 1 otherwise.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/chaos/fuzz.h"
#include "src/common/logging.h"
#include "src/common/strings.h"

using namespace itv;

namespace {

bool WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
  out.close();
  return out.good();
}

void DumpFailure(const std::string& out_dir, const chaos::FuzzResult& result,
                 const sim::ChaosPlan& minimized, size_t shrink_runs) {
  std::string base = out_dir + "/chaos_seed_" + std::to_string(result.seed);
  std::string report = StrFormat(
      "seed=%llu first_violation=%s faults_in_plan=%zu faults_applied=%zu "
      "shrink_runs=%zu\n\n",
      static_cast<unsigned long long>(result.seed),
      result.first_violation.c_str(), minimized.faults.size(),
      result.faults_applied, shrink_runs);
  report += "=== violations ===\n" + result.invariant_report;
  report += "\n=== minimized schedule ===\n" + minimized.ToString();
  report += "\n=== fault log (minimized replay) ===\n";
  for (const std::string& line : result.fault_log) {
    report += "  " + line + "\n";
  }
  if (!result.timeline_report.empty()) {
    report += "\n=== fail-over timeline (first kill) ===\n" +
              result.timeline_report;
  }
  bool ok = WriteFile(base + ".schedule.json", minimized.ToJson()) &&
            WriteFile(base + ".report.txt", report);
  if (!result.trace_json.empty()) {
    ok = WriteFile(base + ".trace.json", result.trace_json) && ok;
  }
  if (!result.metrics_json.empty()) {
    ok = WriteFile(base + ".metrics.json", result.metrics_json) && ok;
  }
  if (!ok) {
    std::fprintf(stderr, "warning: could not write artifacts under %s\n",
                 out_dir.c_str());
  }
  std::fprintf(stderr, "%s", report.c_str());
  std::fprintf(stderr, "artifacts: %s.{schedule.json,report.txt,...}\n",
               base.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  size_t seeds = 20;
  uint64_t seed_base = 1;
  bool single_seed = false;
  uint64_t the_seed = 0;
  std::string out_dir = ".";
  bool shrink = true;
  bool quiet = false;
  bool reshard = false;
  chaos::FuzzOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      seeds = static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--seed-base") {
      seed_base = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      single_seed = true;
      the_seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--faults") {
      options.fault_count =
          static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--horizon") {
      options.horizon =
          Duration::Seconds(std::strtoll(next(), nullptr, 10));
    } else if (arg == "--shards") {
      uint32_t shards =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
      if (shards == 0) {
        std::fprintf(stderr, "--shards must be >= 1\n");
        return 2;
      }
      options.mms_shards = shards;
      options.cmgr_shards = shards;
    } else if (arg == "--reshard") {
      reshard = true;
      options.mms_shards = 4;
      options.check_single_primary = true;
    } else if (arg == "--skewed-load") {
      options.skewed_load = true;
      options.mms_shards = 4;
      options.viewer_count = 16;
      options.check_single_primary = true;
    } else if (arg == "--no-shrink") {
      shrink = false;
    } else if (arg == "--single-primary") {
      options.check_single_primary = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--verbose") {
      SetMinLogLevel(LogLevel::kInfo);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  std::error_code mkdir_error;
  std::filesystem::create_directories(out_dir, mkdir_error);
  if (mkdir_error) {
    std::fprintf(stderr, "cannot create --out %s: %s\n", out_dir.c_str(),
                 mkdir_error.message().c_str());
    return 2;
  }

  std::vector<uint64_t> corpus;
  if (single_seed) {
    corpus.push_back(the_seed);
  } else {
    for (size_t i = 0; i < seeds; ++i) {
      corpus.push_back(seed_base + i);
    }
  }

  size_t failed = 0;
  for (uint64_t seed : corpus) {
    if (reshard) {
      // Alternate growth and shrink across the corpus so one sweep covers
      // both cutover directions (shrink also exercises binding retirement).
      options.reshard_to = seed % 2 == 0 ? 8 : 2;
    }
    chaos::FuzzResult result = chaos::RunSeed(seed, options);
    if (result.passed) {
      if (!quiet) {
        std::printf("seed %" PRIu64 ": PASS (%zu faults applied)\n", seed,
                    result.faults_applied);
      }
      continue;
    }
    ++failed;
    std::printf("seed %" PRIu64 ": FAIL (%s)\n", seed,
                result.first_violation.c_str());
    sim::ChaosPlan minimized = result.plan;
    size_t shrink_runs = 0;
    chaos::FuzzResult final_result = result;
    if (shrink) {
      chaos::ShrinkResult shrunk = chaos::Shrink(
          result, options, /*max_runs=*/64, [quiet](const std::string& line) {
            if (!quiet) {
              std::printf("  %s\n", line.c_str());
            }
          });
      minimized = shrunk.plan;
      shrink_runs = shrunk.runs;
      final_result = shrunk.result;
      std::printf("  minimized: %zu -> %zu faults in %zu replays\n",
                  result.plan.faults.size(), minimized.faults.size(),
                  shrink_runs);
    }
    DumpFailure(out_dir, final_result, minimized, shrink_runs);
  }

  std::printf("chaos_fuzz: %zu/%zu seeds passed\n", corpus.size() - failed,
              corpus.size());
  return failed == 0 ? 0 : 1;
}
